"""Tests for the statistics toolkit."""

import math
import warnings

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.statistics import (
    confidence_interval,
    mean,
    quantile,
    std_dev,
    summarize,
    variance,
    wilson_interval,
)


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3, 4]) == 2.5
        with pytest.raises(ValueError):
            mean([])

    def test_variance_and_std(self):
        assert variance([2, 2, 2]) == 0.0
        assert variance([5]) == 0.0
        assert math.isclose(variance([1, 2, 3]), 1.0)
        assert math.isclose(std_dev([1, 2, 3]), 1.0)

    def test_quantile(self):
        values = [1, 2, 3, 4, 5]
        assert quantile(values, 0.0) == 1
        assert quantile(values, 0.5) == 3
        assert quantile(values, 1.0) == 5
        assert quantile(values, 0.25) == 2
        assert quantile([7], 0.9) == 7
        with pytest.raises(ValueError):
            quantile(values, 1.5)
        # Regression: the convex-combination interpolation underflowed below
        # the sample range for subnormal values (returned 0.0 here).
        assert quantile([5e-324, 5e-324], 0.5) == 5e-324
        with pytest.raises(ValueError):
            quantile([], 0.5)


class TestConfidenceInterval:
    def test_single_value_degenerates(self):
        assert confidence_interval([4.0]) == (4.0, 4.0)

    def test_contains_mean_and_shrinks_with_samples(self):
        small = confidence_interval([1, 2, 3, 4, 5])
        large = confidence_interval(list(range(1, 6)) * 20)
        assert small[0] < 3 < small[1]
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            confidence_interval([1, 2], confidence=1.5)

    def test_zero_variance_samples_degenerate_without_warnings(self):
        """Regression: all-identical outcomes (100% correctness rates) must
        yield the degenerate interval and touch no warning-raising float
        arithmetic — the helpers used to run the full z·s/√n path on them."""
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any RuntimeWarning fails the test
            assert confidence_interval([5.0] * 8) == (5.0, 5.0)
            assert confidence_interval([0.0, 0.0, 0.0]) == (0.0, 0.0)
            assert variance([7.25] * 3) == 0.0
            assert std_dev([7.25] * 3) == 0.0
            stats = summarize([1.5] * 6)
            assert stats.std == 0.0 and stats.mean == 1.5

    def test_zero_variance_numpy_scalars_degenerate_without_warnings(self):
        """The same guarantee when the sample arrives as numpy scalars,
        whose arithmetic reports edge cases as RuntimeWarning instead of
        raising (the spelling aggregation code actually feeds in)."""
        numpy = pytest.importorskip("numpy")
        sample = list(numpy.array([3.0, 3.0, 3.0, 3.0]))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            low, high = confidence_interval(sample)
            assert (low, high) == (3.0, 3.0)
            assert isinstance(low, float)
            assert variance(sample) == 0.0


class TestWilsonInterval:
    def test_stays_open_at_phat_one(self):
        """The regime adaptive sweeps live in: every trial correct.  The
        normal interval collapses to zero width; Wilson must not."""
        low, high = wilson_interval(8, 8)
        assert high == 1.0
        assert 0.0 < low < 1.0
        # z²/(2(n + z²)) at z=1.96, n=8 — the analytical half-width.
        assert math.isclose((high - low) / 2, 3.8416 / (2 * (8 + 3.8416)), rel_tol=1e-3)

    def test_stays_open_at_phat_zero(self):
        low, high = wilson_interval(0, 8)
        assert low == 0.0
        assert 0.0 < high < 1.0
        # Symmetric to the p̂=1 case.
        one_low, one_high = wilson_interval(8, 8)
        assert math.isclose(high, 1.0 - one_low)

    def test_tiny_samples(self):
        low, high = wilson_interval(1, 1)
        assert low > 0.0 and high == 1.0
        low, high = wilson_interval(0, 1)
        assert low == 0.0 and high < 1.0
        # One success in two: the interval straddles 1/2 and stays in [0, 1].
        low, high = wilson_interval(1, 2)
        assert 0.0 <= low < 0.5 < high <= 1.0

    def test_shrinks_with_samples_and_contains_phat(self):
        widths = []
        for count in (4, 16, 64, 256):
            low, high = wilson_interval(count // 2, count)
            assert low < 0.5 < high
            widths.append(high - low)
        assert widths == sorted(widths, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(-1, 4)
        with pytest.raises(ValueError):
            wilson_interval(1, 2, confidence=1.0)

    def test_summarize_proportion_switch(self):
        stats = summarize([1.0, 1.0, 1.0, 1.0], proportion=True)
        assert (stats.ci_low, stats.ci_high) == wilson_interval(4, 4)
        assert stats.half_width is not None and stats.half_width > 0
        with pytest.raises(ValueError):
            summarize([0.5, 1.0], proportion=True)

    def test_summarize_default_keeps_zero_variance_short_circuit(self):
        """proportion=False (the default) must keep the degenerate normal
        interval on all-identical samples — the pre-existing contract."""
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            stats = summarize([1.0] * 6)
        assert (stats.ci_low, stats.ci_high) == (1.0, 1.0)
        assert stats.half_width == 0.0


class TestSummary:
    def test_summarize(self):
        stats = summarize([1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
        assert stats.count == 10
        assert stats.mean == 5.5
        assert stats.minimum == 1
        assert stats.maximum == 10
        assert stats.median == 5.5
        assert stats.p90 > stats.median
        assert len(stats.as_row()) == 7


@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=40))
def test_summary_is_internally_consistent(values):
    stats = summarize(values)
    # Tiny relative tolerance absorbs the one-ulp rounding of the mean.
    slack = 1e-9 * max(1.0, abs(stats.minimum), abs(stats.maximum))
    assert stats.minimum <= stats.median <= stats.maximum
    assert stats.minimum - slack <= stats.mean <= stats.maximum + slack
    assert stats.std >= 0
