"""Tests for exhaustive configuration-space exploration."""

from repro.analysis.reachability import (
    configuration_key,
    explore_configurations,
    key_to_multiset,
    successor_configurations,
)
from repro.core.circles import CirclesProtocol
from repro.core.greedy_sets import predicted_stable_brakets
from repro.core.invariants import braket_invariant_holds
from repro.protocols.exact_majority import ExactMajorityProtocol
from repro.utils.multiset import Multiset


class TestKeys:
    def test_roundtrip(self):
        config = Multiset(["a", "a", "b"])
        assert key_to_multiset(configuration_key(config)) == config


class TestSuccessors:
    def test_two_diagonals_have_one_successor(self):
        protocol = CirclesProtocol(2)
        config = Multiset([protocol.initial_state(0), protocol.initial_state(1)])
        successors = successor_configurations(protocol, config)
        assert len(successors) == 1

    def test_same_state_pair_needs_two_copies(self):
        protocol = ExactMajorityProtocol()
        single = Multiset([protocol.initial_state(0), protocol.initial_state(1)])
        # Only the cross pair can fire; the identical-state self pair must not be invented.
        successors = successor_configurations(protocol, single)
        assert len(successors) == 1

    def test_silent_configuration_has_no_successors(self):
        protocol = CirclesProtocol(2)
        # Everyone identical: nothing can change.
        config = Multiset([protocol.initial_state(1)] * 3)
        assert successor_configurations(protocol, config) == set()


class TestExploration:
    def test_explores_small_circles_instance(self):
        protocol = CirclesProtocol(2)
        result = explore_configurations(protocol, [0, 0, 1])
        assert not result.truncated
        assert result.initial in result.configurations
        assert result.num_configurations >= 2
        # Every explored configuration satisfies the Lemma 3.3 conservation law.
        for key in result.configurations:
            assert braket_invariant_holds(list(key_to_multiset(key).elements()))

    def test_terminal_configurations_are_silent(self):
        protocol = ExactMajorityProtocol()
        result = explore_configurations(protocol, [0, 0, 1])
        terminals = result.terminal_configurations()
        assert terminals
        for key in terminals:
            assert successor_configurations(protocol, key_to_multiset(key)) == set()

    def test_reachable_from_is_reflexive_and_transitive_closure(self):
        protocol = CirclesProtocol(2)
        result = explore_configurations(protocol, [0, 1])
        reachable = result.reachable_from(result.initial)
        assert result.initial in reachable
        assert reachable <= result.configurations

    def test_truncation_flag(self):
        protocol = CirclesProtocol(3)
        result = explore_configurations(protocol, [0, 1, 2, 0, 1, 2], max_configurations=3)
        assert result.truncated
        assert result.num_configurations <= 4

    def test_stable_prediction_is_reachable(self):
        protocol = CirclesProtocol(3)
        colors = [0, 0, 1, 2]
        result = explore_configurations(protocol, colors)
        predicted_brakets = predicted_stable_brakets(colors)
        found = False
        for key in result.configurations:
            config = key_to_multiset(key)
            brakets = Multiset(state.braket for state in config.elements())
            if brakets == predicted_brakets:
                found = True
                break
        assert found, "some reachable configuration realizes the Lemma 3.6 multiset"
