"""``verify_always_correct`` against the exact engine, registry-wide.

The model checker (:mod:`repro.analysis.verification`) and the exact Markov
chain (:mod:`repro.exact`) formalize the same question from different ends:

* the checker asks *graph-theoretically* whether from every reachable
  configuration a correct-closed configuration stays reachable (and no
  incorrect trap exists);
* the chain asks *probabilistically* whether absorption into correct stable
  classes has probability one under the uniform random scheduler.

For finite chains these are equivalent: the probability of eventually
entering a closed class is one, closed classes are exactly the sets runs
end up in, and a reachable non-correct closed class is precisely a
configuration from which no correct-closed configuration is reachable.  The
suite pins that equivalence on **every registry protocol** — including the
heuristics where both sides must *fail* together — so neither analysis can
silently drift.
"""

import math

import pytest

import repro  # noqa: F401  (populates the default protocol registry)
from repro.analysis.verification import verify_always_correct
from repro.exact import (
    ChainTooLarge,
    ExactMarkovEngine,
    SolveTooLarge,
    exact_correctness_probability,
)
from repro.protocols.registry import DEFAULT_REGISTRY

PROTOCOL_NAMES = DEFAULT_REGISTRY.names()

#: Small unique-majority inputs; sized so every registry protocol's
#: configuration graph stays comfortably explorable.
INPUTS = ((0, 0, 1), (0, 0, 0, 1, 1))


@pytest.mark.parametrize("protocol_name", PROTOCOL_NAMES)
@pytest.mark.parametrize("colors", INPUTS, ids=lambda colors: f"n{len(colors)}")
def test_model_checker_agrees_with_exact_absorption(
    protocol_name, colors, make_registry_protocol
):
    """verified == (absorption probability into correct outputs is 1)."""
    protocol = make_registry_protocol(protocol_name)
    if max(colors) >= protocol.num_colors:
        pytest.skip(f"{protocol_name} instance has too few colors for {colors}")
    try:
        # Exact analysis first: its caps fail fast on the one registry case
        # (circles-unordered at n=5) whose configuration space is too large
        # for either analysis — the model checker would take minutes there.
        probability = exact_correctness_probability(protocol, colors)
    except (ChainTooLarge, SolveTooLarge) as too_large:
        pytest.skip(f"{protocol_name} on {colors}: {too_large}")
    assert probability is not None
    verdict = verify_always_correct(protocol, colors)
    assert not verdict.truncated
    always_correct = math.isclose(probability, 1.0, abs_tol=1e-12)
    assert verdict.verified == always_correct, (
        f"{protocol_name} on {colors}: model checker says verified={verdict.verified} "
        f"but exact correctness probability is {probability}"
    )
    # The hard-trap flag must agree with the exact analysis too: a trap means
    # some probability mass is absorbed where no correct configuration is
    # even reachable, so correctness cannot be almost sure.
    if verdict.has_incorrect_trap:
        assert probability < 1.0


@pytest.mark.parametrize("colors", INPUTS, ids=lambda colors: f"n{len(colors)}")
def test_circles_is_verified_and_always_correct(colors, circles_k3):
    """Theorem 3.7 from both ends on the paper's protocol."""
    verdict = verify_always_correct(circles_k3, colors)
    assert verdict.verified
    engine = ExactMarkovEngine.from_colors(circles_k3, colors, arithmetic="exact")
    engine.run(0)
    result = engine.distribution_result
    assert result.correctness_probability_exact == "1/1"
    assert result.always_correct is True


def test_configuration_counts_agree():
    """Both analyses enumerate the same reachable configuration space."""
    protocol = DEFAULT_REGISTRY.create("circles", 2)
    colors = (0, 0, 0, 1, 1)
    verdict = verify_always_correct(protocol, colors)
    engine = ExactMarkovEngine.from_colors(protocol, colors)
    engine.run(0)
    assert engine.distribution_result.num_configurations == verdict.num_configurations
