"""Tests for the exhaustive always-correctness checker (experiment E3)."""

import pytest

from repro.analysis.verification import verify_always_correct
from repro.core.circles import CirclesProtocol
from repro.protocols.cancellation_plurality import CancellationPluralityProtocol
from repro.protocols.exact_majority import ExactMajorityProtocol
from repro.protocols.tournament_plurality import TournamentPluralityProtocol


class TestCirclesVerification:
    @pytest.mark.parametrize(
        "colors",
        [
            (0, 0, 1),
            (0, 1, 1, 1),
            (0, 1, 1, 2),
            (0, 0, 1, 2, 2, 2),
            (0, 1, 2, 2),
        ],
    )
    def test_circles_verifies_on_small_inputs(self, colors):
        k = max(colors) + 1
        verdict = verify_always_correct(CirclesProtocol(k), colors)
        assert verdict.verified
        assert verdict.majority == max(set(colors), key=list(colors).count)
        assert verdict.num_configurations > 0

    def test_requires_unique_majority(self):
        with pytest.raises(ValueError):
            verify_always_correct(CirclesProtocol(2), (0, 0, 1, 1))

    def test_truncated_exploration_is_not_verified(self):
        verdict = verify_always_correct(
            CirclesProtocol(3), (0, 0, 1, 2), max_configurations=2
        )
        assert verdict.truncated
        assert not verdict.verified


class TestBaselineVerification:
    def test_exact_majority_verifies(self):
        verdict = verify_always_correct(ExactMajorityProtocol(), (0, 0, 0, 1, 1))
        assert verdict.verified

    def test_tournament_comparator_verifies(self):
        verdict = verify_always_correct(TournamentPluralityProtocol(3), (0, 0, 1, 2))
        assert verdict.verified

    def test_cancellation_heuristic_fails_on_spoiler_input(self):
        """Counts 3/2/2: the naive heuristic has reachable incorrect traps."""
        verdict = verify_always_correct(
            CancellationPluralityProtocol(3), (0, 0, 0, 1, 1, 2, 2)
        )
        assert not verdict.verified
        assert not verdict.always_stabilizes_correctly
