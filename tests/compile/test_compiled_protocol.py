"""Property-based checks on compiled transition tables.

For **every protocol in the registry**: random state pairs drawn from the
enumerated space must satisfy ``table[encode(p, q)] == δ(p, q)`` (including
the ``changed`` flag), and ``decode ∘ encode`` must be the identity over the
whole space.  Any protocol added to the registry is fuzzed by registration
alone.
"""

import random

import pytest

import repro  # noqa: F401  (populates the default protocol registry)
from repro.compile import (
    StateSpaceCapExceeded,
    compile_from_states,
    compile_protocol,
)
from repro.core.circles import CirclesProtocol
from repro.protocols.registry import DEFAULT_REGISTRY

PROTOCOL_NAMES = DEFAULT_REGISTRY.names()

FUZZ_PAIRS = 300


@pytest.fixture(scope="module")
def compiled_protocols(make_registry_protocol):
    """One (protocol, compiled) pair per registry entry, compiled once."""
    pairs = []
    for name in PROTOCOL_NAMES:
        protocol = make_registry_protocol(name)
        pairs.append((name, protocol, compile_protocol(protocol)))
    return pairs


class TestEveryRegisteredProtocol:
    def test_registry_is_not_empty(self):
        assert PROTOCOL_NAMES

    def test_decode_encode_is_the_identity(self, compiled_protocols):
        for name, _protocol, compiled in compiled_protocols:
            for code, state in enumerate(compiled.states):
                assert compiled.encode(state) == code, name
                assert compiled.decode(code) == state, name

    def test_random_pairs_match_delta(self, compiled_protocols):
        rng = random.Random(2025)
        for name, protocol, compiled in compiled_protocols:
            d = compiled.num_states
            for _ in range(FUZZ_PAIRS):
                p = rng.randrange(d)
                q = rng.randrange(d)
                expected = protocol.transition(compiled.decode(p), compiled.decode(q))
                a, b, changed = compiled.transition_codes(p, q)
                assert compiled.decode(a) == expected.initiator, name
                assert compiled.decode(b) == expected.responder, name
                assert changed == expected.changed, name

    def test_transition_states_matches_delta(self, compiled_protocols):
        rng = random.Random(7)
        for name, protocol, compiled in compiled_protocols:
            for _ in range(50):
                initiator = rng.choice(compiled.states)
                responder = rng.choice(compiled.states)
                expected = protocol.transition(initiator, responder)
                result = compiled.transition_states(initiator, responder)
                assert result.as_pair() == expected.as_pair(), name
                assert result.changed == expected.changed, name

    def test_outputs_match_the_output_map(self, compiled_protocols):
        for name, protocol, compiled in compiled_protocols:
            for code, state in enumerate(compiled.states):
                assert compiled.output_of(code) == protocol.output(state), name
            assert compiled.output_colors() == {
                protocol.output(state) for state in compiled.states
            }, name

    def test_initial_indices_decode_to_initial_states(self, compiled_protocols):
        for name, protocol, compiled in compiled_protocols:
            for color in range(protocol.num_colors):
                index = compiled.initial_index(color)
                assert compiled.decode(index) == protocol.initial_state(color), name


class TestCompileCache:
    def test_same_protocol_and_colors_compile_once(self):
        protocol = CirclesProtocol(3)
        assert compile_protocol(protocol) is compile_protocol(protocol)
        assert compile_protocol(protocol, [0, 1]) is compile_protocol(protocol, [1, 0, 0])

    def test_equal_signature_instances_share_tables(self):
        """Registry sweeps build a fresh instance per run; tables are shared."""
        assert compile_protocol(CirclesProtocol(3)) is compile_protocol(CirclesProtocol(3))

    def test_distinct_signatures_compile_separately(self):
        from repro.core.circles import CirclesVariant, ExchangeRule

        paper = compile_protocol(CirclesProtocol(3))
        ablated = compile_protocol(
            CirclesProtocol(3, variant=CirclesVariant(exchange_rule=ExchangeRule.SUM_WEIGHT))
        )
        assert paper is not ablated

    def test_signature_free_protocols_cache_per_instance(self):
        class Anonymous(CirclesProtocol):
            def compile_signature(self):
                return None

        assert compile_protocol(Anonymous(2)) is not compile_protocol(Anonymous(2))

    def test_cap_applies_to_cache_hits_too(self):
        protocol = CirclesProtocol(3)
        compiled = compile_protocol(protocol)
        with pytest.raises(StateSpaceCapExceeded):
            compile_protocol(protocol, max_states=compiled.num_states - 1)

    def test_cache_hit_matches_cold_call_when_seeds_alone_exceed_the_cap(self):
        """Seeds never count against the cap — on cache hits either.

        Regression: a closure made of seeds only used to compile on the cold
        call but raise on the identical warm call, flipping engine selection
        between runs.
        """
        from repro.protocols.approximate_majority import ApproximateMajorityProtocol

        protocol = ApproximateMajorityProtocol()
        seeds = list(protocol.states())
        first = compile_from_states(protocol, seeds, max_states=1)
        second = compile_from_states(protocol, seeds, max_states=1)
        assert first is second
        assert first.num_states == 3

    def test_cap_exceeded_is_cached_but_retried_at_a_larger_cap(self):
        class Cold(CirclesProtocol):  # fresh per-instance cache, no signature
            def compile_signature(self):
                return None

        protocol = Cold(3)
        with pytest.raises(StateSpaceCapExceeded):
            compile_protocol(protocol, max_states=4)
        # The negative entry answers smaller caps without re-enumerating...
        with pytest.raises(StateSpaceCapExceeded):
            compile_protocol(protocol, max_states=3)
        # ...and a larger cap retries and succeeds.
        assert compile_protocol(protocol).num_states > 4


class TestConversions:
    def test_counts_multiset_roundtrip(self):
        protocol = CirclesProtocol(2)
        compiled = compile_protocol(protocol)
        counts = [0] * compiled.num_states
        counts[0] = 3
        counts[compiled.num_states - 1] = 2
        multiset = compiled.counts_to_multiset(counts)
        assert len(multiset) == 5
        assert compiled.multiset_to_counts(multiset) == counts

    def test_compile_from_states_covers_the_seed_closure(self):
        protocol = CirclesProtocol(3)
        seeds = {protocol.initial_state(0), protocol.initial_state(1)}
        compiled = compile_from_states(protocol, seeds)
        assert seeds <= set(compiled.states)
        assert compiled.num_states == len(set(compiled.states))
