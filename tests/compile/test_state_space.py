"""Tests for reachable-state-space enumeration (the shared δ-closure)."""

import pytest

from repro.compile import StateSpaceCapExceeded, enumerate_states, reachable_state_count
from repro.core.circles import CirclesProtocol
from repro.protocols.approximate_majority import ApproximateMajorityProtocol
from repro.protocols.exact_majority import ExactMajorityProtocol
from repro.protocols.leader_election import LeaderElectionProtocol


class TestEnumeration:
    def test_approximate_majority_closure(self):
        protocol = ApproximateMajorityProtocol()
        states = enumerate_states(protocol)
        # 0-supporter, 1-supporter, blank.
        assert len(states) == 3
        assert len(set(states)) == 3

    def test_exact_majority_closure(self):
        assert reachable_state_count(ExactMajorityProtocol()) == 4

    def test_closure_is_closed_under_delta(self):
        protocol = CirclesProtocol(3)
        states = enumerate_states(protocol)
        space = set(states)
        for initiator in states:
            for responder in states:
                result = protocol.transition(initiator, responder)
                assert result.initiator in space
                assert result.responder in space

    def test_closure_never_exceeds_declared_count(self):
        for k in (2, 3, 4):
            protocol = CirclesProtocol(k)
            assert reachable_state_count(protocol) <= protocol.state_count()

    def test_seeds_come_first_and_order_is_deterministic(self):
        protocol = CirclesProtocol(3)
        first = enumerate_states(protocol, [0, 1])
        second = enumerate_states(protocol, [0, 1])
        assert first == second
        assert first[0] == protocol.initial_state(0)
        assert first[1] == protocol.initial_state(1)

    def test_repeated_colors_are_deduplicated(self):
        protocol = CirclesProtocol(2)
        assert enumerate_states(protocol, [0, 0, 0, 1, 1]) == enumerate_states(
            protocol, [0, 1]
        )

    def test_restricting_colors_shrinks_the_closure(self):
        protocol = CirclesProtocol(3)
        partial = enumerate_states(protocol, [0])
        full = enumerate_states(protocol)
        assert len(partial) < len(full)

    def test_seed_states_entry_point(self):
        protocol = LeaderElectionProtocol()
        states = enumerate_states(protocol, seed_states={protocol.initial_state(0)})
        assert len(states) == 2  # leader + demoted follower

    def test_seed_states_and_colors_are_mutually_exclusive(self):
        protocol = CirclesProtocol(2)
        with pytest.raises(ValueError, match="not both"):
            enumerate_states(protocol, [0], seed_states=[protocol.initial_state(0)])

    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            enumerate_states(CirclesProtocol(2), [])


class TestCap:
    def test_cap_raises_when_closure_grows_past_it(self):
        protocol = CirclesProtocol(4)
        with pytest.raises(StateSpaceCapExceeded):
            enumerate_states(protocol, max_states=4)

    def test_seeds_never_count_against_the_cap(self):
        # Four seed species with a cap of 2: the seeds themselves must not
        # raise (mirroring the CRN translation's historical behavior) —
        # only states *discovered* past the cap do.
        protocol = ApproximateMajorityProtocol()
        states = enumerate_states(protocol, seed_states=list(protocol.states()), max_states=1)
        assert len(states) == 3
