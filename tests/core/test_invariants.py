"""Tests for the invariants and predicates used in the correctness proof."""

from repro.core.braket import BraKet
from repro.core.circles import CirclesProtocol
from repro.core.invariants import (
    all_output_correct,
    braket_counts,
    braket_invariant_holds,
    diagonal_colors,
    is_stable_configuration,
    outputs_agree,
)
from repro.core.state import CirclesState


class TestBraketInvariant:
    def test_initial_configuration_satisfies_invariant(self):
        states = [CirclesState.initial(color) for color in (0, 0, 1, 2)]
        assert braket_invariant_holds(states)

    def test_counts_are_per_color(self):
        bras, kets = braket_counts([BraKet(0, 1), BraKet(1, 0), BraKet(0, 0)])
        assert bras == {0: 2, 1: 1}
        assert kets == {1: 1, 0: 2}

    def test_violation_detected(self):
        assert not braket_invariant_holds([BraKet(0, 1), BraKet(0, 1)])

    def test_accepts_states_and_brakets(self):
        as_states = [CirclesState(0, 1, 0), CirclesState(1, 0, 0)]
        as_brakets = [BraKet(0, 1), BraKet(1, 0)]
        assert braket_invariant_holds(as_states)
        assert braket_invariant_holds(as_brakets)


class TestStability:
    def test_all_same_color_is_stable(self):
        protocol = CirclesProtocol(3)
        states = [CirclesState.initial(1)] * 4
        assert is_stable_configuration(protocol, states)

    def test_two_distinct_diagonals_are_unstable(self):
        protocol = CirclesProtocol(3)
        states = [CirclesState.initial(0), CirclesState.initial(1)]
        assert not is_stable_configuration(protocol, states)

    def test_predicted_circle_is_stable(self):
        protocol = CirclesProtocol(3)
        # The circle over {0, 1, 2} plus the majority diagonal: the Lemma 3.6 shape.
        states = [
            CirclesState(0, 1, 0),
            CirclesState(1, 2, 0),
            CirclesState(2, 0, 0),
            CirclesState(0, 0, 0),
        ]
        assert is_stable_configuration(protocol, states)

    def test_diagonal_plus_reachable_lighter_pair_is_unstable(self):
        protocol = CirclesProtocol(4)
        # ⟨0|0⟩ and ⟨1|2⟩: swapping gives ⟨0|2⟩ (2) and ⟨1|0⟩ (3): min 4,1 -> 2 ... not lower.
        # Use ⟨0|0⟩ and ⟨3|1⟩ instead: swap gives ⟨0|1⟩ (1) and ⟨3|0⟩ (1): min drops to 1.
        states = [CirclesState(0, 0, 0), CirclesState(3, 1, 3)]
        assert not is_stable_configuration(protocol, states)


class TestOutputs:
    def test_outputs_agree(self):
        states = [CirclesState(0, 1, 2), CirclesState(1, 0, 2)]
        assert outputs_agree(states) == 2

    def test_outputs_disagree(self):
        states = [CirclesState(0, 1, 2), CirclesState(1, 0, 1)]
        assert outputs_agree(states) is None

    def test_outputs_agree_empty(self):
        assert outputs_agree([]) is None

    def test_all_output_correct(self):
        states = [CirclesState(0, 1, 2), CirclesState(1, 0, 2)]
        assert all_output_correct(states, 2)
        assert not all_output_correct(states, 0)
        assert not all_output_correct([], 0)

    def test_diagonal_colors(self):
        states = [CirclesState(0, 0, 0), CirclesState(1, 2, 0), CirclesState(2, 2, 0)]
        assert diagonal_colors(states) == {0, 2}


class TestBraketCountVectors:
    def test_indicator_vectors_partition_bras_and_kets(self):
        from repro.core.invariants import braket_count_vectors

        items = [BraKet(0, 1), BraKet(1, 0), CirclesState(0, 0, 0)]
        vectors = braket_count_vectors(items, 2)
        assert set(vectors) == {"bra[0]", "bra[1]", "ket[0]", "ket[1]"}
        assert vectors["bra[0]"] == (1, 0, 1)
        assert vectors["bra[1]"] == (0, 1, 0)
        assert vectors["ket[0]"] == (0, 1, 1)
        assert vectors["ket[1]"] == (1, 0, 0)
        # Each side's indicators sum to the all-ones (population) vector.
        for side in ("bra", "ket"):
            total = [
                sum(vectors[f"{side}[{color}]"][i] for color in range(2))
                for i in range(len(items))
            ]
            assert total == [1, 1, 1]

    def test_dot_with_counts_matches_braket_counts(self):
        from repro.core.invariants import braket_count_vectors

        items = [BraKet(0, 1), BraKet(1, 0), BraKet(0, 0)]
        counts = [3, 1, 2]
        expanded = [item for item, count in zip(items, counts) for _ in range(count)]
        bras, kets = braket_counts(expanded)
        vectors = braket_count_vectors(items, 2)
        for color in range(2):
            assert (
                sum(c * v for c, v in zip(counts, vectors[f"bra[{color}]"]))
                == bras.get(color, 0)
            )
            assert (
                sum(c * v for c, v in zip(counts, vectors[f"ket[{color}]"]))
                == kets.get(color, 0)
            )
