"""Tests for the Circles protocol definition (§2): states, maps and transition."""

import pytest

from repro.core.braket import BraKet
from repro.core.circles import CirclesProtocol, CirclesVariant, ExchangeRule, OutputRule
from repro.core.state import CirclesState


class TestDeclaration:
    def test_state_set_is_k_cubed(self):
        for k in (2, 3, 4, 5):
            protocol = CirclesProtocol(k)
            assert protocol.state_count() == k**3
            assert len(set(protocol.states())) == k**3

    def test_input_map(self):
        protocol = CirclesProtocol(4)
        assert protocol.initial_state(2) == CirclesState(2, 2, 2)
        with pytest.raises(ValueError):
            protocol.initial_state(4)
        with pytest.raises(ValueError):
            protocol.initial_state(-1)

    def test_output_map_reads_out(self):
        protocol = CirclesProtocol(4)
        assert protocol.output(CirclesState(0, 1, 3)) == 3

    def test_needs_at_least_one_color(self):
        with pytest.raises(ValueError):
            CirclesProtocol(0)

    def test_describe_mentions_variant(self):
        info = CirclesProtocol(3).describe()
        assert info["state_count"] == 27
        assert info["exchange_rule"] == "min-weight"


class TestExchangeStep:
    def test_two_different_diagonals_exchange(self):
        protocol = CirclesProtocol(3)
        result = protocol.transition(CirclesState(0, 0, 0), CirclesState(1, 1, 1))
        assert result.changed
        assert result.initiator.braket == BraKet(0, 1)
        assert result.responder.braket == BraKet(1, 0)

    def test_same_color_diagonals_do_not_exchange(self):
        protocol = CirclesProtocol(3)
        result = protocol.transition(CirclesState(1, 1, 1), CirclesState(1, 1, 0))
        # No ket exchange, but the diagonal broadcast aligns the outputs.
        assert result.initiator.braket == BraKet(1, 1)
        assert result.responder.braket == BraKet(1, 1)
        assert result.initiator.out == result.responder.out == 1

    def test_exchange_never_touches_bras_or_outputs_in_step_one(self):
        protocol = CirclesProtocol(5)
        initiator = CirclesState(0, 3, 4)
        responder = CirclesState(2, 1, 4)
        result = protocol.transition(initiator, responder)
        assert result.initiator.bra == 0
        assert result.responder.bra == 2

    def test_exchange_only_when_min_weight_strictly_decreases(self):
        protocol = CirclesProtocol(3)
        # ⟨0|1⟩ (w=1) and ⟨1|0⟩ (w=2): swapping makes both diagonal (w=3) — refused.
        result = protocol.transition(CirclesState(0, 1, 0), CirclesState(1, 0, 1))
        assert result.initiator.braket == BraKet(0, 1)
        assert result.responder.braket == BraKet(1, 0)

    def test_should_exchange_matches_transition(self):
        protocol = CirclesProtocol(4)
        for a in protocol.states():
            b = CirclesState(1, 3, 2)
            expected = protocol.should_exchange(a.braket, b.braket)
            result = protocol.transition(a, b)
            exchanged = result.initiator.ket != a.ket or result.responder.ket != b.ket
            assert exchanged == expected


class TestOutputStep:
    def test_diagonal_broadcasts_to_both(self):
        protocol = CirclesProtocol(4)
        # ⟨2|2⟩ meets ⟨0|3⟩: weights 4 and 3; swap would give ⟨2|3⟩ (1) and ⟨0|2⟩ (2) → exchange.
        result = protocol.transition(CirclesState(2, 2, 2), CirclesState(0, 3, 1))
        # After the exchange neither is diagonal, so outputs stay as they were.
        assert result.initiator.braket == BraKet(2, 3)
        assert result.responder.braket == BraKet(0, 2)
        assert result.initiator.out == 2
        assert result.responder.out == 1

    def test_diagonal_after_no_exchange_broadcasts(self):
        protocol = CirclesProtocol(4)
        # ⟨1|1⟩ (w=4) meets ⟨1|2⟩ (w=1): swap gives ⟨1|2⟩ and ⟨1|1⟩ — min unchanged, refused.
        result = protocol.transition(CirclesState(1, 1, 3), CirclesState(1, 2, 0))
        assert result.initiator.braket == BraKet(1, 1)
        assert result.initiator.out == 1
        assert result.responder.out == 1

    def test_no_diagonal_no_output_change(self):
        protocol = CirclesProtocol(4)
        result = protocol.transition(CirclesState(0, 1, 0), CirclesState(2, 3, 2))
        assert result.initiator.out == 0
        assert result.responder.out == 2


class TestVariants:
    def test_paper_variant_is_default(self):
        protocol = CirclesProtocol(3)
        assert protocol.variant.exchange_rule is ExchangeRule.MIN_WEIGHT
        assert protocol.variant.output_rule is OutputRule.DIAGONAL_BROADCAST

    def test_sum_rule_accepts_sum_decreasing_swaps(self):
        k = 5
        paper = CirclesProtocol(k)
        ablation = CirclesProtocol(k, CirclesVariant(exchange_rule=ExchangeRule.SUM_WEIGHT))
        # ⟨0|4⟩ (4) and ⟨1|2⟩ (1): swap → ⟨0|2⟩ (2) and ⟨1|4⟩ (3); sum 5 → 5, min 1 → 2.
        first, second = BraKet(0, 4), BraKet(1, 2)
        assert not paper.should_exchange(first, second)
        assert not ablation.should_exchange(first, second)
        # Two diagonals: sum 10 → 5 and min 5 → 1: both rules exchange.
        assert paper.should_exchange(BraKet(0, 0), BraKet(1, 1))
        assert ablation.should_exchange(BraKet(0, 0), BraKet(1, 1))

    def test_epidemic_output_rule_copies_initiator_output(self):
        protocol = CirclesProtocol(4, CirclesVariant(output_rule=OutputRule.EPIDEMIC))
        result = protocol.transition(CirclesState(0, 1, 3), CirclesState(2, 3, 2))
        assert result.responder.out == 3

    def test_symmetry_declaration(self):
        assert CirclesProtocol(3).is_symmetric()
        assert not CirclesProtocol(
            2, CirclesVariant(output_rule=OutputRule.EPIDEMIC)
        ).is_symmetric()
