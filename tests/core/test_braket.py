"""Unit and property tests for bra-kets, weights and modulo ranges (§1, §2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.braket import (
    BraKet,
    braket_weight,
    clockwise_distance,
    exchange_decreases_min_weight,
    exchange_kets,
    mod_range_closed,
    mod_range_open,
)


class TestWeight:
    def test_diagonal_weighs_k(self):
        assert braket_weight(BraKet(2, 2), 5) == 5
        assert braket_weight(BraKet(0, 0), 3) == 3

    def test_off_diagonal_is_clockwise_distance(self):
        assert braket_weight(BraKet(1, 4), 5) == 3
        assert braket_weight(BraKet(4, 1), 5) == 2  # wraps around the circle

    def test_weight_range(self):
        # Off-diagonal weights lie in [1, k-1]; diagonals weigh exactly k.
        k = 7
        for bra in range(k):
            for ket in range(k):
                weight = braket_weight(BraKet(bra, ket), k)
                if bra == ket:
                    assert weight == k
                else:
                    assert 1 <= weight <= k - 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            braket_weight(BraKet(0, 5), 5)
        with pytest.raises(ValueError):
            braket_weight(BraKet(-1, 0), 5)
        with pytest.raises(ValueError):
            braket_weight(BraKet(0, 0), 0)


class TestExchange:
    def test_exchange_swaps_kets_only(self):
        first, second = exchange_kets(BraKet(0, 1), BraKet(2, 3))
        assert first == BraKet(0, 3)
        assert second == BraKet(2, 1)

    def test_paper_example_two_diagonals_exchange(self):
        # Two diagonal bra-kets of different colors always benefit from an exchange.
        assert exchange_decreases_min_weight(BraKet(0, 0), BraKet(1, 1), 3)

    def test_same_color_diagonals_do_not_exchange(self):
        assert not exchange_decreases_min_weight(BraKet(1, 1), BraKet(1, 1), 3)

    def test_exchange_that_would_increase_minimum_is_rejected(self):
        # ⟨0|1⟩ and ⟨1|0⟩ (k=3) have weights 1 and 2; swapping gives two diagonals (3, 3).
        assert not exchange_decreases_min_weight(BraKet(0, 1), BraKet(1, 0), 3)


class TestModRanges:
    def test_paper_examples(self):
        assert mod_range_closed(2, 7, 10) == [2, 3, 4, 5, 6, 7]
        assert mod_range_open(8, 3, 10) == [9, 0, 1, 2]

    def test_wrapping_closed(self):
        assert mod_range_closed(8, 3, 10) == [8, 9, 0, 1, 2, 3]

    def test_singleton_closed(self):
        assert mod_range_closed(4, 4, 10) == [4]

    def test_open_adjacent_is_empty(self):
        assert mod_range_open(3, 4, 10) == []

    def test_open_same_endpoint_is_empty(self):
        assert mod_range_open(4, 4, 10) == []

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            mod_range_closed(0, 1, 0)
        with pytest.raises(ValueError):
            mod_range_open(0, 1, 0)

    def test_clockwise_distance(self):
        assert clockwise_distance(8, 3, 10) == 5
        assert clockwise_distance(3, 8, 10) == 5
        assert clockwise_distance(4, 4, 10) == 0
        with pytest.raises(ValueError):
            clockwise_distance(0, 0, 0)


# -- property tests ------------------------------------------------------------

ks = st.integers(min_value=2, max_value=9)


@given(ks, st.data())
def test_weight_consistency_with_distance(k, data):
    bra = data.draw(st.integers(min_value=0, max_value=k - 1))
    ket = data.draw(st.integers(min_value=0, max_value=k - 1))
    weight = braket_weight(BraKet(bra, ket), k)
    if bra == ket:
        assert weight == k
    else:
        assert weight == clockwise_distance(bra, ket, k)


@given(ks, st.data())
def test_closed_range_length_formula(k, data):
    x = data.draw(st.integers(min_value=0, max_value=k - 1))
    y = data.draw(st.integers(min_value=0, max_value=k - 1))
    closed = mod_range_closed(x, y, k)
    opened = mod_range_open(x, y, k)
    assert len(closed) == (y - x) % k + 1
    assert len(opened) == max((y - x) % k - 1, 0)
    # The open range is the closed range without its endpoints.
    assert opened == [value for value in closed if value not in (x, y)] or x == y


@given(ks, st.data())
def test_exchange_preserves_bras(k, data):
    first = BraKet(
        data.draw(st.integers(0, k - 1)), data.draw(st.integers(0, k - 1))
    )
    second = BraKet(
        data.draw(st.integers(0, k - 1)), data.draw(st.integers(0, k - 1))
    )
    swapped_first, swapped_second = exchange_kets(first, second)
    assert swapped_first.bra == first.bra
    assert swapped_second.bra == second.bra
    assert sorted([swapped_first.ket, swapped_second.ket]) == sorted([first.ket, second.ket])
