"""Property-based tests of the Circles dynamics against the paper's theorems.

Each property mirrors one statement of §3:

* Lemma 3.3  — the bra/ket counts are conserved at every step;
* Theorem 3.4 — the ordinal potential strictly decreases at every ket
  exchange and the number of exchanges is finite;
* Lemma 3.6  — the stable configuration equals the greedy-set prediction;
* Theorem 3.7 — with a unique majority every agent eventually outputs it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circles import CirclesProtocol
from repro.core.greedy_sets import has_unique_majority, predicted_majority, predicted_stable_brakets
from repro.core.invariants import braket_invariant_holds, is_stable_configuration
from repro.core.potential import ordinal_potential
from repro.scheduling.permutation import RandomPermutationScheduler
from repro.simulation.convergence import StableCircles
from repro.simulation.engine import AgentSimulation
from repro.simulation.population import Population
from repro.simulation.runner import run_circles
from repro.utils.multiset import Multiset

MAX_COLORS = 4

color_assignments = st.lists(
    st.integers(min_value=0, max_value=MAX_COLORS - 1), min_size=2, max_size=10
)
unique_majority_assignments = color_assignments.filter(has_unique_majority)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@settings(max_examples=30, deadline=None)
@given(color_assignments, seeds)
def test_braket_invariant_preserved_at_every_step(colors, seed):
    """Lemma 3.3 along randomized executions, checked after every interaction."""
    protocol = CirclesProtocol(MAX_COLORS)
    population = Population.from_colors(protocol, colors)
    scheduler = RandomPermutationScheduler(len(population), seed=seed)
    simulation = AgentSimulation(protocol, population, scheduler)
    assert braket_invariant_holds(simulation.states())
    for _ in range(8 * len(colors)):
        simulation.step()
        assert braket_invariant_holds(simulation.states())


@settings(max_examples=25, deadline=None)
@given(color_assignments, seeds)
def test_potential_strictly_decreases_at_every_exchange(colors, seed):
    """Theorem 3.4: g(C) drops at each ket exchange and never rises otherwise."""
    protocol = CirclesProtocol(MAX_COLORS)
    population = Population.from_colors(protocol, colors)
    scheduler = RandomPermutationScheduler(len(population), seed=seed)
    simulation = AgentSimulation(protocol, population, scheduler)
    potential = ordinal_potential(simulation.states(), MAX_COLORS)
    for _ in range(8 * len(colors)):
        record = simulation.step()
        new_potential = ordinal_potential(simulation.states(), MAX_COLORS)
        exchanged = record.before[0].ket != record.after[0].ket
        if exchanged:
            assert new_potential < potential
        else:
            assert new_potential == potential
        potential = new_potential


@settings(max_examples=25, deadline=None)
@given(unique_majority_assignments, seeds)
def test_run_stabilizes_to_predicted_configuration(colors, seed):
    """Lemma 3.6 + Theorem 3.7 on randomized inputs under a weakly fair scheduler."""
    outcome = run_circles(colors, num_colors=MAX_COLORS, seed=seed)
    assert outcome.converged, "the run must stabilize within the default budget"
    final_brakets = Multiset(state.braket for state in outcome.final_states)
    assert final_brakets == predicted_stable_brakets(colors)
    majority = predicted_majority(colors)
    assert outcome.correct
    assert set(outcome.outputs) == {majority}


@settings(max_examples=20, deadline=None)
@given(unique_majority_assignments, seeds)
def test_stable_criterion_is_permanent(colors, seed):
    """Once StableCircles holds, further interactions never break it (stability is closed)."""
    outcome = run_circles(colors, num_colors=MAX_COLORS, seed=seed)
    protocol = CirclesProtocol(MAX_COLORS)
    population = Population(list(outcome.final_states))
    scheduler = RandomPermutationScheduler(len(population), seed=seed ^ 0xABCDEF)
    simulation = AgentSimulation(protocol, population, scheduler)
    criterion = StableCircles()
    assert criterion.is_converged(protocol, simulation.states())
    for _ in range(6 * len(colors)):
        simulation.step()
        assert criterion.is_converged(protocol, simulation.states())
        assert is_stable_configuration(protocol, simulation.states())


@settings(max_examples=20, deadline=None)
@given(unique_majority_assignments, seeds)
def test_number_of_exchanges_is_bounded(colors, seed):
    """Theorem 3.4: exchanges are finite; empirically they are at most n·k here."""
    outcome = run_circles(colors, num_colors=MAX_COLORS, seed=seed)
    assert outcome.ket_exchanges is not None
    assert outcome.ket_exchanges <= len(colors) * MAX_COLORS
