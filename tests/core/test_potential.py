"""Tests for the ordinal potential g(C) and the scalar energy (Theorem 3.4, E5)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.braket import BraKet
from repro.core.circles import CirclesProtocol
from repro.core.potential import (
    configuration_energy,
    minimum_energy,
    ordinal_potential,
    sorted_weights,
    weight_histogram,
)
from repro.core.state import CirclesState


class TestSortedWeights:
    def test_accepts_brakets_and_states(self):
        k = 4
        brakets = [BraKet(0, 0), BraKet(1, 3)]
        states = [CirclesState(0, 0, 0), CirclesState(1, 3, 1)]
        assert sorted_weights(brakets, k) == sorted_weights(states, k) == [2, 4]


class TestOrdinalPotential:
    def test_initial_configuration_has_maximal_potential(self):
        k = 3
        initial = [CirclesState.initial(color) for color in (0, 1, 2)]
        potential = ordinal_potential(initial, k)
        # All weights are k, so every coefficient is k.
        assert all(potential.coefficient(exp) == k for exp in range(len(initial)))

    def test_exchange_decreases_potential(self):
        k = 3
        protocol = CirclesProtocol(k)
        before = [CirclesState(0, 0, 0), CirclesState(1, 1, 1), CirclesState(0, 0, 0)]
        result = protocol.transition(before[0], before[1])
        after = [result.initiator, result.responder, before[2]]
        assert ordinal_potential(after, k) < ordinal_potential(before, k)

    def test_reducing_the_minimum_beats_any_other_change(self):
        k = 5
        lighter = [BraKet(0, 1), BraKet(0, 0), BraKet(0, 0)]   # weights 1, 5, 5
        heavier = [BraKet(0, 2), BraKet(0, 2), BraKet(0, 2)]   # weights 2, 2, 2
        assert ordinal_potential(lighter, k) < ordinal_potential(heavier, k)


class TestScalarEnergy:
    def test_initial_energy_is_n_times_k(self):
        k, n = 4, 6
        initial = [CirclesState.initial(color % k) for color in range(n)]
        assert configuration_energy(initial, k) == n * k

    def test_minimum_energy_of_single_color_input(self):
        # Every agent the same color: the stable configuration is all diagonals.
        assert minimum_energy([2, 2, 2], 5) == 3 * 5

    def test_minimum_energy_example(self):
        # Input 0,0,1 (k=2): stable = {⟨0|1⟩, ⟨1|0⟩, ⟨0|0⟩} with weights 1, 1, 2.
        assert minimum_energy([0, 0, 1], 2) == 4

    def test_minimum_energy_never_exceeds_initial(self):
        colors = [0, 0, 1, 2, 2, 3]
        k = 4
        assert minimum_energy(colors, k) <= len(colors) * k

    def test_weight_histogram(self):
        k = 3
        histogram = weight_histogram([BraKet(0, 0), BraKet(0, 1), BraKet(1, 0)], k)
        assert histogram == {3: 1, 1: 1, 2: 1}


# -- property tests -----------------------------------------------------------------

@given(
    st.integers(min_value=2, max_value=6).flatmap(
        lambda k: st.tuples(
            st.just(k),
            st.lists(
                st.tuples(st.integers(0, k - 1), st.integers(0, k - 1)),
                min_size=2,
                max_size=10,
            ),
        )
    )
)
def test_energy_equals_sum_of_sorted_weights(params):
    k, pairs = params
    brakets = [BraKet(bra, ket) for bra, ket in pairs]
    assert configuration_energy(brakets, k) == sum(sorted_weights(brakets, k))


@given(st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=12))
def test_minimum_energy_is_at_most_initial_energy(colors):
    k = 5
    assert minimum_energy(colors, k) <= len(colors) * k


@given(st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=10))
def test_potential_of_prediction_not_above_initial(colors):
    """The predicted stable configuration never has larger potential than the start."""
    from repro.core.greedy_sets import predicted_stable_brakets

    k = 5
    initial = [CirclesState.initial(color) for color in colors]
    stable = list(predicted_stable_brakets(colors).elements())
    assert ordinal_potential(stable, k) <= ordinal_potential(initial, k)


class TestCountLevelHelpers:
    """The count-level energy/potential toolkit behind the observer pipeline."""

    def _setup(self):
        from repro.core.potential import state_weights

        states = [CirclesState(0, 0, 0), CirclesState(0, 1, 0), CirclesState(1, 0, 1)]
        return states, state_weights(states, 3)

    def test_counts_energy_matches_expanded_energy(self):
        from repro.core.potential import configuration_energy, counts_energy

        states, weights = self._setup()
        counts = [4, 2, 1]
        expanded = [state for state, count in zip(states, counts) for _ in range(count)]
        assert counts_energy(counts, weights) == configuration_energy(expanded, 3)

    def test_weight_histogram_from_counts_matches_expanded(self):
        from repro.core.potential import weight_histogram, weight_histogram_from_counts

        states, weights = self._setup()
        counts = [4, 2, 1]
        expanded = [state for state, count in zip(states, counts) for _ in range(count)]
        assert weight_histogram_from_counts(counts, weights) == weight_histogram(expanded, 3)

    def test_ordinal_from_histogram_matches_expanded_potential(self):
        from repro.core.potential import ordinal_potential, ordinal_potential_from_histogram

        states, _ = self._setup()
        expanded = states * 3
        histogram = {}
        from repro.core.potential import weight_histogram

        histogram = weight_histogram(expanded, 3)
        assert ordinal_potential_from_histogram(histogram) == ordinal_potential(expanded, 3)

    def test_compare_weight_histograms_orders_like_the_ordinal(self):
        from repro.core.potential import compare_weight_histograms

        assert compare_weight_histograms({1: 2, 3: 1}, {1: 1, 2: 2}) == -1
        assert compare_weight_histograms({1: 1, 2: 2}, {1: 2, 3: 1}) == 1
        assert compare_weight_histograms({2: 3}, {2: 3}) == 0

    def test_compare_weight_histograms_rejects_different_sizes(self):
        import pytest

        from repro.core.potential import compare_weight_histograms

        with pytest.raises(ValueError, match="different population sizes"):
            compare_weight_histograms({1: 2}, {1: 3})


class TestWeightThresholdVectors:
    def test_indicators_cover_each_occurring_threshold_once(self):
        from repro.core.potential import weight_threshold_vectors

        vectors = weight_threshold_vectors([2, 1, 2, 4])
        assert [w for w, _ in vectors] == [1, 2, 4]
        assert dict(vectors) == {
            1: (0, 1, 0, 0),
            2: (1, 1, 1, 0),
            4: (1, 1, 1, 1),
        }

    def test_dot_with_counts_is_the_cumulative_weight_histogram(self):
        from repro.core.braket import braket_weight
        from repro.core.potential import (
            weight_histogram_from_counts,
            weight_threshold_vectors,
        )

        protocol = CirclesProtocol(3)
        states = sorted(protocol.states())
        weights = [braket_weight(state.braket, 3) for state in states]
        counts = [(7 * i) % 5 for i in range(len(states))]
        histogram = weight_histogram_from_counts(counts, weights)
        for w, vector in weight_threshold_vectors(weights):
            cumulative = sum(
                count for value, count in histogram.items() if value <= w
            )
            assert sum(c * v for c, v in zip(counts, vector)) == cumulative
