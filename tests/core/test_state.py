"""Tests for the CirclesState triple."""

from repro.core.braket import BraKet
from repro.core.state import CirclesState


class TestCirclesState:
    def test_initial_is_diagonal_with_own_output(self):
        state = CirclesState.initial(4)
        assert state == CirclesState(4, 4, 4)
        assert state.is_diagonal()
        assert state.braket == BraKet(4, 4)

    def test_with_ket_preserves_bra_and_out(self):
        state = CirclesState(1, 1, 1).with_ket(3)
        assert state == CirclesState(1, 3, 1)
        assert not state.is_diagonal()

    def test_with_out_preserves_braket(self):
        state = CirclesState(1, 2, 1).with_out(2)
        assert state == CirclesState(1, 2, 2)

    def test_is_hashable_and_usable_in_multisets(self):
        seen = {CirclesState(0, 1, 2), CirclesState(0, 1, 2), CirclesState(1, 0, 2)}
        assert len(seen) == 2

    def test_str_mentions_braket_and_output(self):
        text = str(CirclesState(1, 2, 0))
        assert "1" in text and "2" in text and "out=0" in text
