"""Tests for greedy independent sets and circle bra-ket sets (Definitions 3.1 and 3.5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.braket import BraKet
from repro.core.greedy_sets import (
    circle_braket_set,
    greedy_independent_sets,
    has_unique_majority,
    predicted_majority,
    predicted_stable_brakets,
    singleton_groups,
)
from repro.utils.multiset import Multiset


class TestGreedyIndependentSets:
    def test_definition_example(self):
        # Input counts: color0 x3, color1 x2, color2 x1.
        colors = [0, 0, 0, 1, 1, 2]
        groups = greedy_independent_sets(colors)
        assert groups == [{0, 1, 2}, {0, 1}, {0}]

    def test_groups_are_nested_decreasing(self):
        colors = [0, 1, 1, 2, 2, 2, 3]
        groups = greedy_independent_sets(colors)
        for earlier, later in zip(groups, groups[1:]):
            assert later <= earlier

    def test_number_of_groups_is_max_count(self):
        colors = [4] * 7 + [1] * 3
        assert len(greedy_independent_sets(colors)) == 7

    def test_total_size_matches_population(self):
        colors = [0, 0, 1, 2, 2, 2, 3]
        groups = greedy_independent_sets(colors)
        assert sum(len(group) for group in groups) == len(colors)

    def test_empty_input(self):
        assert greedy_independent_sets([]) == []

    def test_rejects_negative_colors(self):
        with pytest.raises(ValueError):
            greedy_independent_sets([0, -1])


class TestLemma32:
    """Lemma 3.2: with a unique majority μ, G_q = {μ} and no other singleton."""

    def test_last_group_is_majority_singleton(self):
        colors = [0, 0, 0, 1, 1, 2]
        groups = greedy_independent_sets(colors)
        assert groups[-1] == {0}

    def test_no_other_color_forms_a_singleton(self):
        colors = [0, 0, 0, 0, 1, 1, 2, 2, 3]
        groups = singleton_groups(colors)
        assert groups, "the majority color must form at least one singleton group"
        assert all(group == {0} for group in groups)

    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=14).filter(
            lambda colors: has_unique_majority(colors)
        )
    )
    def test_lemma_holds_on_random_unique_majority_inputs(self, colors):
        majority = predicted_majority(colors)
        groups = greedy_independent_sets(colors)
        assert groups[-1] == {majority}
        for group in groups:
            if len(group) == 1:
                assert group == {majority}


class TestCircleBraketSets:
    def test_singleton_gives_diagonal(self):
        assert circle_braket_set({3}) == Multiset([BraKet(3, 3)])

    def test_two_elements_give_two_crossed_brakets(self):
        assert circle_braket_set({1, 4}) == Multiset([BraKet(1, 4), BraKet(4, 1)])

    def test_cycle_follows_sorted_order(self):
        result = circle_braket_set({0, 2, 5})
        assert result == Multiset([BraKet(0, 2), BraKet(2, 5), BraKet(5, 0)])

    def test_empty_group(self):
        assert circle_braket_set(set()).is_empty()

    def test_size_equals_group_size(self):
        group = {0, 1, 3, 6, 7}
        assert len(circle_braket_set(group)) == len(group)


class TestPrediction:
    def test_prediction_counts_match_population_size(self):
        colors = [0, 0, 0, 1, 1, 2, 3, 3]
        prediction = predicted_stable_brakets(colors)
        assert len(prediction) == len(colors)

    def test_prediction_example(self):
        colors = [0, 0, 1]
        prediction = predicted_stable_brakets(colors)
        assert prediction == Multiset([BraKet(0, 1), BraKet(1, 0), BraKet(0, 0)])

    def test_unique_majority_has_diagonal_in_prediction(self):
        colors = [2, 2, 2, 0, 1]
        prediction = predicted_stable_brakets(colors)
        assert prediction.count(BraKet(2, 2)) >= 1

    def test_tie_has_no_diagonal_in_prediction(self):
        colors = [0, 0, 1, 1]
        prediction = predicted_stable_brakets(colors)
        assert all(not braket.is_diagonal() for braket in prediction.support())


class TestMajority:
    def test_unique_majority(self):
        assert predicted_majority([0, 1, 1, 2]) == 1
        assert has_unique_majority([0, 1, 1, 2])

    def test_tie_raises(self):
        with pytest.raises(ValueError):
            predicted_majority([0, 0, 1, 1])
        assert not has_unique_majority([0, 0, 1, 1])

    def test_empty_input(self):
        with pytest.raises(ValueError):
            predicted_majority([])
        assert not has_unique_majority([])


# -- property tests --------------------------------------------------------------

color_lists = st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=20)


@given(color_lists)
def test_group_sizes_sum_to_population(colors):
    groups = greedy_independent_sets(colors)
    assert sum(len(group) for group in groups) == len(colors)


@given(color_lists)
def test_color_appears_in_exactly_count_many_groups(colors):
    groups = greedy_independent_sets(colors)
    for color in set(colors):
        assert sum(1 for group in groups if color in group) == colors.count(color)


@given(color_lists)
def test_prediction_preserves_bra_and_ket_counts(colors):
    """The predicted stable multiset satisfies the Lemma 3.3 conservation law."""
    prediction = predicted_stable_brakets(colors)
    bras = sorted(braket.bra for braket in prediction.elements())
    kets = sorted(braket.ket for braket in prediction.elements())
    assert bras == sorted(colors)
    assert kets == sorted(colors)
