"""Tests for the 3-state approximate majority baseline."""

import pytest

from repro.protocols.approximate_majority import ApproximateMajorityProtocol, OpinionState
from repro.simulation.convergence import OutputConsensus
from repro.simulation.runner import run_protocol


class TestDefinition:
    def test_only_two_colors(self):
        with pytest.raises(ValueError):
            ApproximateMajorityProtocol(3)

    def test_three_states(self):
        assert ApproximateMajorityProtocol().state_count() == 3

    def test_blank_outputs_zero_by_convention(self):
        assert ApproximateMajorityProtocol().output(OpinionState(None)) == 0


class TestTransitions:
    def test_conflict_blanks_responder(self):
        protocol = ApproximateMajorityProtocol()
        result = protocol.transition(OpinionState(0), OpinionState(1))
        assert result.initiator == OpinionState(0)
        assert result.responder == OpinionState(None)

    def test_supporter_recruits_blank(self):
        protocol = ApproximateMajorityProtocol()
        assert protocol.transition(OpinionState(1), OpinionState(None)).responder == OpinionState(1)
        assert protocol.transition(OpinionState(None), OpinionState(1)).initiator == OpinionState(1)

    def test_two_blanks_change_nothing(self):
        protocol = ApproximateMajorityProtocol()
        assert not protocol.transition(OpinionState(None), OpinionState(None)).changed

    def test_agreeing_supporters_change_nothing(self):
        protocol = ApproximateMajorityProtocol()
        assert not protocol.transition(OpinionState(0), OpinionState(0)).changed


class TestBehaviour:
    def test_converges_with_large_margin(self):
        colors = [0] * 18 + [1] * 2
        outcome = run_protocol(
            ApproximateMajorityProtocol(),
            colors,
            criterion=OutputConsensus(),
            seed=123,
        )
        assert outcome.converged
        assert outcome.correct

    def test_is_fast_compared_to_population_size(self):
        colors = [0] * 24 + [1] * 6
        outcome = run_protocol(
            ApproximateMajorityProtocol(),
            colors,
            criterion=OutputConsensus(),
            seed=7,
            check_interval=len(colors),
        )
        assert outcome.converged
        # O(n log n) expected interactions; give a generous constant.
        assert outcome.steps <= 60 * len(colors)
