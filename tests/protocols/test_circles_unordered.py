"""Tests for the unordered-setting adaptation of Circles (§4)."""

from repro.core.greedy_sets import predicted_majority
from repro.protocols.circles_unordered import UnorderedCirclesProtocol, UnorderedState
from repro.scheduling.random_uniform import UniformRandomScheduler
from repro.simulation.engine import AgentSimulation
from repro.simulation.population import Population


class TestDefinition:
    def test_state_count_is_2k_fourth(self):
        for k in (2, 3, 4):
            protocol = UnorderedCirclesProtocol(k)
            assert protocol.state_count() == 2 * k**4
            assert sum(1 for _ in protocol.states()) == 2 * k**4

    def test_initial_state(self):
        protocol = UnorderedCirclesProtocol(3)
        state = protocol.initial_state(2)
        assert state == UnorderedState(2, True, 0, 0, 2)
        assert state.is_diagonal()

    def test_output_is_stored_color(self):
        assert UnorderedCirclesProtocol(3).output(UnorderedState(1, False, 0, 2, 2)) == 2


class TestOrderingLayer:
    def test_same_color_leader_election_demotes_responder(self):
        protocol = UnorderedCirclesProtocol(3)
        a = UnorderedState(1, True, 0, 0, 1)
        b = UnorderedState(1, True, 0, 0, 1)
        result = protocol.transition(a, b)
        assert result.initiator.leader
        assert not result.responder.leader

    def test_label_collision_reinitializes_circles_layer(self):
        protocol = UnorderedCirclesProtocol(3)
        a = UnorderedState(0, True, 1, 2, 0)
        b = UnorderedState(2, True, 1, 0, 2)
        result = protocol.transition(a, b)
        # The responder bumps its label to 2 and re-initializes to the diagonal ⟨2|2⟩.
        assert result.responder.bra_label == 2
        assert result.responder.ket_label == 2
        assert result.responder.out == b.color

    def test_follower_adopts_leader_label_and_reinitializes(self):
        protocol = UnorderedCirclesProtocol(3)
        leader = UnorderedState(1, True, 2, 2, 1)
        follower = UnorderedState(1, False, 0, 1, 0)
        result = protocol.transition(leader, follower)
        assert result.responder.bra_label == 2
        assert result.responder.ket_label == 2
        assert result.responder.out == follower.color


class TestCirclesLayer:
    def test_diagonal_broadcasts_its_color_not_its_label(self):
        protocol = UnorderedCirclesProtocol(3)
        # Distinct colors, distinct labels: the ordering layer does nothing and the
        # diagonal initiator broadcasts its *color* (2) as the output.
        a = UnorderedState(2, True, 1, 1, 2)
        b = UnorderedState(0, False, 0, 2, 0)
        result = protocol.transition(a, b)
        assert result.responder.out == 2 or result.initiator.out == 2

    def test_ket_exchange_on_labels(self):
        protocol = UnorderedCirclesProtocol(3)
        a = UnorderedState(0, False, 0, 0, 0)
        b = UnorderedState(1, False, 1, 1, 1)
        result = protocol.transition(a, b)
        assert result.initiator.ket_label == 1
        assert result.responder.ket_label == 0


class TestBehaviour:
    def test_converges_to_majority_under_random_scheduler(self):
        colors = [0, 0, 0, 0, 1, 1, 2]
        k = 3
        protocol = UnorderedCirclesProtocol(k)
        population = Population.from_colors(protocol, colors)
        scheduler = UniformRandomScheduler(len(colors), seed=17)
        simulation = AgentSimulation(protocol, population, scheduler)
        simulation.run(400 * len(colors) * len(colors))
        majority = predicted_majority(colors)
        assert set(simulation.outputs()) == {majority}
