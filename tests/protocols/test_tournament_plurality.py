"""Tests for the tournament-plurality comparator (the naive always-correct baseline)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy_sets import has_unique_majority, predicted_majority
from repro.protocols.tournament_plurality import (
    TournamentPluralityProtocol,
    num_pairs,
    pair_index,
)
from repro.simulation.convergence import OutputConsensus
from repro.simulation.runner import run_protocol


class TestPairIndex:
    def test_enumerates_all_pairs_without_collision(self):
        k = 6
        indices = {pair_index(a, b, k) for a in range(k) for b in range(k) if a != b}
        assert indices == set(range(num_pairs(k)))

    def test_symmetric_in_arguments(self):
        assert pair_index(2, 5, 7) == pair_index(5, 2, 7)

    def test_rejects_equal_colors(self):
        with pytest.raises(ValueError):
            pair_index(3, 3, 5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pair_index(0, 9, 5)


class TestDefinition:
    def test_state_count_formula(self):
        for k in (2, 3, 4):
            protocol = TournamentPluralityProtocol(k)
            assert protocol.state_count() == k * 2 ** (k - 1) * 3 ** num_pairs(k)

    def test_declared_enumeration_matches_formula_for_small_k(self):
        protocol = TournamentPluralityProtocol(3)
        assert sum(1 for _ in protocol.states()) == protocol.state_count()

    def test_state_count_explodes_much_faster_than_circles(self):
        for k in range(2, 8):
            assert TournamentPluralityProtocol(k).state_count() > k**3

    def test_initial_state(self):
        protocol = TournamentPluralityProtocol(3)
        state = protocol.initial_state(1)
        assert state.color == 1
        assert state.tokens == frozenset({0, 2})
        # The agent initially believes its own color wins its own pairs.
        assert protocol.output(state) == 1


class TestTransitions:
    def test_cancellation_removes_both_tokens(self):
        protocol = TournamentPluralityProtocol(3)
        a, b = protocol.initial_state(0), protocol.initial_state(1)
        result = protocol.transition(a, b)
        assert 1 not in result.initiator.tokens
        assert 0 not in result.responder.tokens

    def test_no_cancellation_for_same_color(self):
        protocol = TournamentPluralityProtocol(3)
        a, b = protocol.initial_state(2), protocol.initial_state(2)
        result = protocol.transition(a, b)
        assert result.initiator.tokens == a.tokens
        assert result.responder.tokens == b.tokens

    def test_surviving_token_advertises_verdict(self):
        protocol = TournamentPluralityProtocol(3)
        holder = protocol.initial_state(0)
        observer = protocol.initial_state(2)
        # Cancel the {0, 2} pair first so only the {0, 1} token survives on the holder.
        first = protocol.transition(holder, observer)
        holder2 = first.initiator
        fresh_observer = protocol.initial_state(2)
        second = protocol.transition(holder2, fresh_observer)
        index = pair_index(0, 1, 3)
        assert second.responder.beliefs[index] == 0

    def test_symmetry_declared(self):
        assert TournamentPluralityProtocol(3).is_symmetric()


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=2), min_size=3, max_size=9).filter(
        has_unique_majority
    ),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_always_correct_on_small_inputs(colors, seed):
    """The comparator must agree with the true plurality under fair scheduling."""
    protocol = TournamentPluralityProtocol(3)
    outcome = run_protocol(
        protocol,
        colors,
        criterion=OutputConsensus(target=predicted_majority(colors)),
        seed=seed,
    )
    assert outcome.converged
    assert outcome.correct
