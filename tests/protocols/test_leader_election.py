"""Tests for the global and per-color leader election protocols."""

from repro.protocols.leader_election import (
    ColorLeaderState,
    LeaderElectionProtocol,
    LeaderState,
    PerColorLeaderElection,
)
from repro.scheduling.round_robin import RoundRobinScheduler
from repro.simulation.engine import AgentSimulation
from repro.simulation.population import Population


class TestGlobalLeaderElection:
    def test_two_states(self):
        assert LeaderElectionProtocol().state_count() == 2

    def test_everyone_starts_as_leader(self):
        assert LeaderElectionProtocol().initial_state(0) == LeaderState(True)

    def test_responder_leader_is_demoted(self):
        protocol = LeaderElectionProtocol()
        result = protocol.transition(LeaderState(True), LeaderState(True))
        assert result.initiator.leader
        assert not result.responder.leader

    def test_follower_pairs_change_nothing(self):
        protocol = LeaderElectionProtocol()
        assert not protocol.transition(LeaderState(False), LeaderState(False)).changed
        assert not protocol.transition(LeaderState(True), LeaderState(False)).changed

    def test_protocol_is_asymmetric(self):
        assert not LeaderElectionProtocol().is_symmetric()

    def test_exactly_one_leader_survives_under_fair_scheduling(self):
        protocol = LeaderElectionProtocol()
        n = 9
        population = Population.from_colors(protocol, [0] * n)
        scheduler = RoundRobinScheduler(n)
        simulation = AgentSimulation(protocol, population, scheduler)
        simulation.run(4 * n * n)
        leaders = sum(1 for state in simulation.states() if state.leader)
        assert leaders == 1


class TestPerColorLeaderElection:
    def test_two_k_states(self):
        assert PerColorLeaderElection(4).state_count() == 8

    def test_demotion_only_within_a_color(self):
        protocol = PerColorLeaderElection(3)
        same = protocol.transition(ColorLeaderState(1, True), ColorLeaderState(1, True))
        assert not same.responder.leader
        different = protocol.transition(ColorLeaderState(1, True), ColorLeaderState(2, True))
        assert not different.changed

    def test_output_is_color(self):
        assert PerColorLeaderElection(3).output(ColorLeaderState(2, False)) == 2

    def test_each_color_keeps_exactly_one_leader(self):
        protocol = PerColorLeaderElection(3)
        colors = [0, 0, 0, 1, 1, 2, 2, 2, 2]
        population = Population.from_colors(protocol, colors)
        scheduler = RoundRobinScheduler(len(colors))
        simulation = AgentSimulation(protocol, population, scheduler)
        simulation.run(6 * len(colors) * len(colors))
        leaders_per_color = {color: 0 for color in set(colors)}
        for state in simulation.states():
            if state.leader:
                leaders_per_color[state.color] += 1
        assert all(count == 1 for count in leaders_per_color.values())
