"""Tests for the tie-report layer over Circles (§4, Handling ties)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy_sets import has_unique_majority, predicted_majority
from repro.protocols.circles_ties import TieAwareState, TieReportCircles
from repro.scheduling.permutation import RandomPermutationScheduler
from repro.simulation.engine import AgentSimulation
from repro.simulation.population import Population


class TestDefinition:
    def test_state_count_stays_cubic(self):
        for k in (2, 3, 4):
            protocol = TieReportCircles(k)
            assert protocol.state_count() == 2 * k**3
            assert sum(1 for _ in protocol.states()) == 2 * k**3

    def test_tie_sentinel_is_outside_color_range(self):
        protocol = TieReportCircles(3)
        assert protocol.tie_output == 3

    def test_initial_state_is_fresh_diagonal(self):
        protocol = TieReportCircles(3)
        assert protocol.initial_state(1) == TieAwareState(1, 1, 1, True)

    def test_output_rules(self):
        protocol = TieReportCircles(3)
        assert protocol.output(TieAwareState(1, 1, 2, False)) == 1  # diagonal wins
        assert protocol.output(TieAwareState(0, 1, 2, True)) == 2   # fresh non-diagonal
        assert protocol.output(TieAwareState(0, 1, 2, False)) == 3  # stale -> TIE


class TestTransitions:
    def test_exchange_matches_circles_and_marks_stale(self):
        protocol = TieReportCircles(3)
        result = protocol.transition(TieAwareState(0, 0, 0, True), TieAwareState(1, 1, 1, True))
        assert result.initiator.ket == 1
        assert result.responder.ket == 0
        assert not result.initiator.fresh
        assert not result.responder.fresh

    def test_diagonal_broadcast_refreshes_both(self):
        protocol = TieReportCircles(3)
        # ⟨2|2⟩ meets stale ⟨0|1⟩: weights 3 and 1; swap would give ⟨2|1⟩ (2) and ⟨0|2⟩ (2)
        # so no exchange happens, and the diagonal broadcasts color 2.
        result = protocol.transition(TieAwareState(2, 2, 2, True), TieAwareState(0, 1, 0, False))
        assert result.initiator.fresh and result.responder.fresh
        assert result.initiator.out == result.responder.out == 2

    def test_non_diagonal_meeting_changes_nothing(self):
        protocol = TieReportCircles(4)
        result = protocol.transition(
            TieAwareState(0, 1, 0, True), TieAwareState(2, 3, 2, True)
        )
        assert not result.changed


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=2), min_size=2, max_size=9).filter(
        has_unique_majority
    ),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_behaves_exactly_like_circles_on_unique_majority_inputs(colors, seed):
    """With a unique majority, the tie layer must still converge to the majority."""
    k = 3
    protocol = TieReportCircles(k)
    population = Population.from_colors(protocol, colors)
    scheduler = RandomPermutationScheduler(len(colors), seed=seed)
    simulation = AgentSimulation(protocol, population, scheduler)
    simulation.run(60 * len(colors) * len(colors))
    majority = predicted_majority(colors)
    assert set(simulation.outputs()) == {majority}


def test_exact_tie_leaves_no_diagonal_and_some_tie_reports():
    """On a 2-2 tie the stable bra-kets form a circle; stale agents report TIE."""
    k = 2
    protocol = TieReportCircles(k)
    colors = [0, 0, 1, 1]
    population = Population.from_colors(protocol, colors)
    scheduler = RandomPermutationScheduler(len(colors), seed=9)
    simulation = AgentSimulation(protocol, population, scheduler)
    simulation.run(400)
    states = simulation.states()
    assert all(not state.is_diagonal() for state in states)
    # At least the agents whose last event was an exchange report the tie.
    assert protocol.tie_output in set(simulation.outputs())
