"""Tests for the protocol registry."""

import pytest

from repro.core.circles import CirclesProtocol
from repro.protocols.registry import DEFAULT_REGISTRY, ProtocolRegistry, get_protocol


class TestProtocolRegistry:
    def test_register_and_create(self):
        registry = ProtocolRegistry()
        registry.register("circles", CirclesProtocol)
        protocol = registry.create("circles", 4)
        assert isinstance(protocol, CirclesProtocol)
        assert protocol.num_colors == 4

    def test_duplicate_registration_rejected(self):
        registry = ProtocolRegistry()
        registry.register("x", CirclesProtocol)
        with pytest.raises(ValueError):
            registry.register("x", CirclesProtocol)
        registry.register("x", CirclesProtocol, overwrite=True)

    def test_unknown_name(self):
        registry = ProtocolRegistry()
        with pytest.raises(KeyError):
            registry.create("missing")

    def test_contains_and_names(self):
        registry = ProtocolRegistry()
        registry.register("b", CirclesProtocol)
        registry.register("a", CirclesProtocol)
        assert "a" in registry
        assert registry.names() == ["a", "b"]
        assert list(registry) == ["a", "b"]


class TestDefaultRegistry:
    def test_builtins_are_registered(self):
        expected = {
            "circles",
            "circles-tie-report",
            "circles-unordered",
            "color-ordering",
            "exact-majority",
            "approximate-majority",
            "cancellation-plurality",
            "tournament-plurality",
            "leader-election",
            "per-color-leader-election",
        }
        assert expected <= set(DEFAULT_REGISTRY.names())

    def test_get_protocol_builds_circles(self):
        protocol = get_protocol("circles", 5)
        assert isinstance(protocol, CirclesProtocol)
        assert protocol.state_count() == 125
