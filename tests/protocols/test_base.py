"""Tests for the abstract protocol interface and TransitionResult."""

import pytest

from repro.core.circles import CirclesProtocol
from repro.protocols.base import PopulationProtocol, TransitionResult


class TestTransitionResult:
    def test_as_pair(self):
        result = TransitionResult("a", "b", True)
        assert result.as_pair() == ("a", "b")

    def test_is_frozen(self):
        result = TransitionResult(1, 2, False)
        with pytest.raises(AttributeError):
            result.initiator = 3  # type: ignore[misc]


class _CountingProtocol(PopulationProtocol[int]):
    """A trivial protocol used to exercise the base-class helpers."""

    name = "counting"

    def states(self):
        return range(self.num_colors)

    def initial_state(self, color: int) -> int:
        self.validate_color(color)
        return color

    def output(self, state: int) -> int:
        return state

    def transition(self, initiator: int, responder: int) -> TransitionResult[int]:
        # The responder adopts the larger value: a simple max-computing protocol.
        new_responder = max(initiator, responder)
        return TransitionResult(initiator, new_responder, new_responder != responder)


class TestBaseHelpers:
    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            _CountingProtocol(0)

    def test_state_count_default_enumerates(self):
        assert _CountingProtocol(7).state_count() == 7

    def test_validate_color(self):
        protocol = _CountingProtocol(3)
        protocol.validate_color(2)
        with pytest.raises(ValueError):
            protocol.validate_color(3)

    def test_describe(self):
        info = _CountingProtocol(3).describe()
        assert info == {"name": "counting", "num_colors": 3, "state_count": 3}

    def test_is_symmetric_default_detects_asymmetry(self):
        # The max protocol changes only the responder, so it is not symmetric.
        assert not _CountingProtocol(3).is_symmetric()

    def test_repr_contains_k(self):
        assert "k=3" in repr(_CountingProtocol(3))
        assert "k=4" in repr(CirclesProtocol(4))
