"""Tests for the naive cancellation-plurality baseline (including its known failure)."""

from repro.protocols.cancellation_plurality import CancellationPluralityProtocol, PluralityState
from repro.scheduling.adversarial import SingleColorScheduler
from repro.simulation.engine import AgentSimulation
from repro.simulation.population import Population
from repro.simulation.convergence import OutputConsensus
from repro.simulation.runner import run_protocol


class TestDefinition:
    def test_two_k_states(self):
        for k in (2, 3, 5):
            assert CancellationPluralityProtocol(k).state_count() == 2 * k

    def test_initial_state_is_active(self):
        assert CancellationPluralityProtocol(3).initial_state(2) == PluralityState(2, True)


class TestTransitions:
    def test_active_pair_of_different_colors_cancels(self):
        protocol = CancellationPluralityProtocol(3)
        result = protocol.transition(PluralityState(0, True), PluralityState(2, True))
        assert result.initiator == PluralityState(0, False)
        assert result.responder == PluralityState(2, False)

    def test_active_converts_passive(self):
        protocol = CancellationPluralityProtocol(3)
        result = protocol.transition(PluralityState(1, True), PluralityState(0, False))
        assert result.responder == PluralityState(1, False)

    def test_two_passives_change_nothing(self):
        protocol = CancellationPluralityProtocol(3)
        assert not protocol.transition(PluralityState(1, False), PluralityState(0, False)).changed

    def test_same_color_actives_change_nothing(self):
        protocol = CancellationPluralityProtocol(3)
        assert not protocol.transition(PluralityState(1, True), PluralityState(1, True)).changed


class TestBehaviour:
    def test_correct_for_two_colors_with_margin(self):
        colors = [0] * 8 + [1] * 4
        outcome = run_protocol(
            CancellationPluralityProtocol(2), colors, criterion=OutputConsensus(), seed=3
        )
        assert outcome.converged and outcome.correct

    def test_documented_failure_with_three_colors(self):
        """Counts 3/2/2: a schedule that cancels all of color 0's actives yields a wrong answer.

        This is the failure mode motivating always-correct plurality protocols
        (and the reason the naive protocol is only a baseline).
        """
        protocol = CancellationPluralityProtocol(3)
        colors = [0, 0, 0, 1, 1, 2, 2]
        population = Population.from_colors(protocol, colors)
        # Agents 0,1,2 have color 0; cancel them against 3,4 (color 1) and 5 (color 2),
        # then let the surviving color-2 active (agent 6) convert everyone.
        forced = [(0, 3), (1, 4), (2, 5)] + [(6, i) for i in range(6)]
        scheduler = SingleColorScheduler(len(colors), forced)
        simulation = AgentSimulation(protocol, population, scheduler)
        simulation.run(len(forced))
        outputs = set(simulation.outputs())
        assert outputs == {2}, "the naive protocol converges to a non-majority color"
