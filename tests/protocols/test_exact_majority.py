"""Tests for the 4-state exact majority baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.exact_majority import ExactMajorityProtocol, MajorityState
from repro.simulation.convergence import OutputConsensus
from repro.simulation.runner import run_protocol


class TestDefinition:
    def test_only_two_colors(self):
        with pytest.raises(ValueError):
            ExactMajorityProtocol(3)

    def test_four_states(self):
        assert ExactMajorityProtocol().state_count() == 4

    def test_initial_state_is_strong(self):
        assert ExactMajorityProtocol().initial_state(1) == MajorityState(1, True)

    def test_output_is_opinion(self):
        protocol = ExactMajorityProtocol()
        assert protocol.output(MajorityState(0, False)) == 0
        assert protocol.output(MajorityState(1, True)) == 1


class TestTransitions:
    def test_opposite_strong_agents_cancel(self):
        protocol = ExactMajorityProtocol()
        result = protocol.transition(MajorityState(0, True), MajorityState(1, True))
        assert result.initiator == MajorityState(0, False)
        assert result.responder == MajorityState(1, False)

    def test_strong_converts_weak(self):
        protocol = ExactMajorityProtocol()
        result = protocol.transition(MajorityState(0, True), MajorityState(1, False))
        assert result.responder == MajorityState(0, False)
        assert result.initiator == MajorityState(0, True)

    def test_weak_pair_changes_nothing(self):
        protocol = ExactMajorityProtocol()
        result = protocol.transition(MajorityState(0, False), MajorityState(1, False))
        assert not result.changed

    def test_same_opinion_strong_pair_changes_nothing(self):
        protocol = ExactMajorityProtocol()
        assert not protocol.transition(MajorityState(1, True), MajorityState(1, True)).changed

    def test_strong_count_difference_is_invariant(self):
        protocol = ExactMajorityProtocol()
        states = [protocol.initial_state(c) for c in (0, 0, 0, 1, 1)]

        def difference(population):
            strong0 = sum(1 for s in population if s.strong and s.opinion == 0)
            strong1 = sum(1 for s in population if s.strong and s.opinion == 1)
            return strong0 - strong1

        base = difference(states)
        result = protocol.transition(states[0], states[3])
        states[0], states[3] = result.initiator, result.responder
        assert difference(states) == base


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=1), min_size=3, max_size=14).filter(
        lambda colors: colors.count(0) != colors.count(1)
    ),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_always_correct_for_two_colors(colors, seed):
    """Exact majority must converge to the true majority under a fair scheduler."""
    outcome = run_protocol(
        ExactMajorityProtocol(),
        colors,
        criterion=OutputConsensus(),
        seed=seed,
    )
    assert outcome.converged
    assert outcome.correct
