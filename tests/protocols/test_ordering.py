"""Tests for the O(k^2)-state color-ordering protocol (§4, unordered setting)."""

from repro.protocols.ordering import (
    ColorOrderingProtocol,
    OrderingState,
    is_valid_ordering,
    label_assignment,
)
from repro.scheduling.random_uniform import UniformRandomScheduler
from repro.simulation.engine import AgentSimulation
from repro.simulation.population import Population


class TestDefinition:
    def test_state_count_is_2k_squared(self):
        for k in (2, 3, 5):
            protocol = ColorOrderingProtocol(k)
            assert protocol.state_count() == 2 * k * k
            assert sum(1 for _ in protocol.states()) == 2 * k * k

    def test_initial_state(self):
        assert ColorOrderingProtocol(4).initial_state(2) == OrderingState(2, True, 0)

    def test_output_is_label(self):
        assert ColorOrderingProtocol(4).output(OrderingState(2, False, 3)) == 3


class TestTransitions:
    def test_same_color_leaders_elect(self):
        protocol = ColorOrderingProtocol(3)
        result = protocol.transition(OrderingState(1, True, 2), OrderingState(1, True, 0))
        assert result.initiator.leader
        assert not result.responder.leader
        assert result.responder.label == 2  # adopts the surviving leader's label

    def test_follower_copies_leader_label(self):
        protocol = ColorOrderingProtocol(3)
        result = protocol.transition(OrderingState(1, True, 2), OrderingState(1, False, 0))
        assert result.responder.label == 2
        mirrored = protocol.transition(OrderingState(1, False, 0), OrderingState(1, True, 2))
        assert mirrored.initiator.label == 2

    def test_label_collision_bumps_responder(self):
        protocol = ColorOrderingProtocol(4)
        result = protocol.transition(OrderingState(0, True, 1), OrderingState(2, True, 1))
        assert result.responder.label == 2
        assert result.responder.leader

    def test_label_collision_wraps_modulo_k(self):
        protocol = ColorOrderingProtocol(3)
        result = protocol.transition(OrderingState(0, True, 2), OrderingState(1, True, 2))
        assert result.responder.label == 0

    def test_distinct_labels_do_not_interact(self):
        protocol = ColorOrderingProtocol(3)
        assert not protocol.transition(
            OrderingState(0, True, 1), OrderingState(2, True, 0)
        ).changed


class TestHelpers:
    def test_label_assignment_uses_leaders_only(self):
        states = [
            OrderingState(0, True, 2),
            OrderingState(0, False, 1),
            OrderingState(1, True, 0),
        ]
        assert label_assignment(states) == {0: 2, 1: 0}

    def test_is_valid_ordering(self):
        valid = [
            OrderingState(0, True, 0),
            OrderingState(0, False, 0),
            OrderingState(1, True, 1),
        ]
        assert is_valid_ordering(valid, 2)
        duplicate_labels = [OrderingState(0, True, 1), OrderingState(1, True, 1)]
        assert not is_valid_ordering(duplicate_labels, 2)
        missing_leader = [OrderingState(0, True, 0), OrderingState(1, False, 1)]
        assert not is_valid_ordering(missing_leader, 2)
        two_leaders = [
            OrderingState(0, True, 0),
            OrderingState(0, True, 1),
            OrderingState(1, True, 2),
        ]
        assert not is_valid_ordering(two_leaders, 3)


class TestConvergence:
    def test_reaches_valid_ordering_under_random_scheduler(self):
        k = 3
        colors = [0, 0, 1, 1, 1, 2, 2]
        protocol = ColorOrderingProtocol(k)
        population = Population.from_colors(protocol, colors)
        scheduler = UniformRandomScheduler(len(colors), seed=5)
        simulation = AgentSimulation(protocol, population, scheduler)
        simulation.run(300 * len(colors) * len(colors))
        assert is_valid_ordering(simulation.states(), k)
