"""atomic_write_text: write-temp-then-rename semantics."""

import pytest

from repro.utils.atomic import atomic_write_text


class TestAtomicWriteText:
    def test_creates_file_and_parent_dirs(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "content")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_write_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "original")
        with pytest.raises(TypeError):
            atomic_write_text(target, object())  # not str: write() raises
        assert target.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_accepts_str_paths(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(str(target), "via str path")
        assert target.read_text() == "via str path"
