"""perflog: atomic append semantics for the BENCH_results.json history.

The regression of interest: the perf log is a single JSON array, so every
append is a read-modify-write of the whole history — an interrupted plain
``write_text`` used to be able to truncate the accumulated log.  The append
must go through the temp-then-rename path so a crash at any point leaves
either the old complete history or the new one.
"""

import json

import pytest

from repro.utils.perflog import append_perf_entry, load_perf_log


class TestLoadPerfLog:
    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_perf_log(tmp_path / "BENCH_results.json") == []

    def test_round_trips_entries(self, tmp_path):
        path = tmp_path / "log.json"
        append_perf_entry(path, {"bench": "a", "seconds": 1.0})
        append_perf_entry(path, {"bench": "b", "seconds": 2.0})
        assert [entry["bench"] for entry in load_perf_log(path)] == ["a", "b"]

    def test_corrupt_history_raises_instead_of_truncating(self, tmp_path):
        path = tmp_path / "log.json"
        path.write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            load_perf_log(path)
        with pytest.raises(json.JSONDecodeError):
            append_perf_entry(path, {"bench": "a"})
        assert path.read_text() == "{not json"

    def test_non_array_history_raises(self, tmp_path):
        path = tmp_path / "log.json"
        path.write_text('{"bench": "a"}')
        with pytest.raises(ValueError, match="JSON array"):
            load_perf_log(path)


class TestAppendPerfEntry:
    def test_appends_and_preserves_existing_entries(self, tmp_path):
        path = tmp_path / "log.json"
        path.write_text(json.dumps([{"bench": "seed"}]))
        history = append_perf_entry(path, {"bench": "new"})
        assert [entry["bench"] for entry in history] == ["seed", "new"]
        assert json.loads(path.read_text()) == history

    def test_interrupted_append_leaves_history_intact(self, tmp_path, monkeypatch):
        """A crash during the rename must not lose the accumulated log."""
        path = tmp_path / "log.json"
        append_perf_entry(path, {"bench": "precious"})
        before = path.read_text()

        import repro.utils.atomic as atomic

        def exploding_replace(src, dst):
            raise OSError("simulated crash mid-append")

        monkeypatch.setattr(atomic.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            append_perf_entry(path, {"bench": "lost"})
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["log.json"]

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "log.json"
        append_perf_entry(path, {"bench": "a"})
        assert [p.name for p in tmp_path.iterdir()] == ["log.json"]
