"""Unit and property tests for the ordinal arithmetic behind g(C)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.ordinal import Ordinal


class TestConstruction:
    def test_zero(self):
        assert Ordinal.zero().is_zero()
        assert not Ordinal.zero()
        assert Ordinal.zero() == Ordinal()

    def test_from_int(self):
        five = Ordinal.from_int(5)
        assert five.is_finite()
        assert five.coefficient(0) == 5
        assert Ordinal.from_int(0).is_zero()

    def test_from_int_rejects_negative(self):
        with pytest.raises(ValueError):
            Ordinal.from_int(-1)

    def test_omega(self):
        w = Ordinal.omega()
        assert not w.is_finite()
        assert w.degree() == 1
        assert Ordinal.omega(3, 2).coefficient(3) == 2

    def test_rejects_negative_terms(self):
        with pytest.raises(ValueError):
            Ordinal({-1: 2})
        with pytest.raises(ValueError):
            Ordinal({1: -2})

    def test_from_coefficients_matches_paper_shape(self):
        # weights w1..w4 sorted ascending -> w1*ω^3 + w2*ω^2 + w3*ω + w4
        ordinal = Ordinal.from_coefficients([1, 2, 2, 5])
        assert ordinal.coefficient(3) == 1
        assert ordinal.coefficient(2) == 2
        assert ordinal.coefficient(1) == 2
        assert ordinal.coefficient(0) == 5


class TestComparison:
    def test_finite_ordering(self):
        assert Ordinal.from_int(2) < Ordinal.from_int(3)
        assert Ordinal.from_int(3) <= Ordinal.from_int(3)

    def test_omega_dominates_any_finite(self):
        assert Ordinal.from_int(10**9) < Ordinal.omega()

    def test_higher_power_dominates(self):
        assert Ordinal.omega(2) > Ordinal.omega(1, 10**6) + Ordinal.from_int(10**6)

    def test_lexicographic_on_coefficients(self):
        smaller = Ordinal.from_coefficients([1, 9, 9])
        larger = Ordinal.from_coefficients([2, 0, 0])
        assert smaller < larger

    def test_equality_and_hash(self):
        a = Ordinal({2: 1, 0: 3})
        b = Ordinal.omega(2) + Ordinal.from_int(3)
        assert a == b
        assert hash(a) == hash(b)


class TestArithmetic:
    def test_natural_sum_is_coefficientwise(self):
        a = Ordinal({2: 1, 0: 4})
        b = Ordinal({2: 2, 1: 1})
        assert (a + b).terms() == {2: 3, 1: 1, 0: 4}

    def test_scale(self):
        a = Ordinal({1: 2, 0: 3})
        assert a.scale(3).terms() == {1: 6, 0: 9}
        assert a.scale(0).is_zero()
        with pytest.raises(ValueError):
            a.scale(-1)

    def test_repr_mentions_omega(self):
        assert "ω" in repr(Ordinal.omega(2, 3))
        assert repr(Ordinal.zero()) == "Ordinal(0)"


# -- property tests -----------------------------------------------------------

coefficient_lists = st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8)


@given(coefficient_lists, coefficient_lists)
def test_comparison_is_total_and_antisymmetric(first, second):
    a = Ordinal.from_coefficients(first)
    b = Ordinal.from_coefficients(second)
    assert (a < b) + (b < a) + (a == b) == 1


@given(coefficient_lists, coefficient_lists, coefficient_lists)
def test_natural_sum_monotone(first, second, third):
    a, b, c = (Ordinal.from_coefficients(values) for values in (first, second, third))
    if a < b:
        assert a + c <= b + c


@given(st.lists(st.integers(min_value=0, max_value=20), min_size=2, max_size=8))
def test_decreasing_the_lowest_changed_coefficient_decreases_the_ordinal(coefficients):
    """The core step of Theorem 3.4: lowering an earlier (higher-power) weight wins."""
    a = Ordinal.from_coefficients(coefficients)
    index = next((i for i, value in enumerate(coefficients) if value > 0), None)
    if index is None:
        return
    lowered = list(coefficients)
    lowered[index] -= 1
    # Arbitrarily inflate every later coefficient: the ordinal must still shrink.
    for later in range(index + 1, len(lowered)):
        lowered[later] += 17
    assert Ordinal.from_coefficients(lowered) < a
