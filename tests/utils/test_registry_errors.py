"""The shared unknown-name contract of the four name registries.

Protocols, engines, workloads and runners all resolve plain-string names;
historically each phrased its unknown-name error differently (two raised
``ValueError``).  They now share :func:`repro.utils.errors.unknown_name_error`:
a ``KeyError`` that names the kind, repeats the offending name, and lists the
valid names in sorted order.
"""

import pytest

import repro  # noqa: F401  (populates the default registries)
from repro.api.executor import get_runner
from repro.protocols.registry import get_protocol
from repro.simulation.registry import available_engines, get_engine
from repro.utils.errors import unknown_name_error
from repro.workloads.registry import get_workload, workload_names


class TestHelper:
    def test_message_shape(self):
        error = unknown_name_error("gadget", "nope", ["b", "a"])
        assert isinstance(error, KeyError)
        assert str(error) == '"unknown gadget \'nope\'; available gadgets: a, b"'

    def test_empty_registry_lists_none(self):
        assert "<none>" in str(unknown_name_error("gadget", "nope", []))


@pytest.mark.parametrize(
    "resolve,kind,known",
    [
        (get_protocol, "protocol", lambda: get_protocol("circles", 2)),
        (get_engine, "engine", lambda: get_engine("batch")),
        (get_workload, "workload", lambda: get_workload("uniform")),
        (get_runner, "runner", lambda: get_runner("protocol")),
    ],
    ids=["protocol", "engine", "workload", "runner"],
)
class TestEveryRegistry:
    def test_unknown_name_raises_keyerror_with_sorted_listing(self, resolve, kind, known):
        with pytest.raises(KeyError) as excinfo:
            resolve("definitely-not-registered")
        message = str(excinfo.value)
        assert f"unknown {kind} 'definitely-not-registered'" in message
        assert f"available {kind}s:" in message
        # The listing is sorted.
        listing = message.split(f"available {kind}s:")[1].rstrip('"').strip()
        names = [name.strip() for name in listing.split(",")]
        assert names == sorted(names)

    def test_known_name_resolves(self, resolve, kind, known):
        assert known() is not None


class TestListingsMatchRegistries:
    def test_engine_listing_matches_available_engines(self):
        with pytest.raises(KeyError) as excinfo:
            get_engine("nope")
        for name in available_engines():
            assert name in str(excinfo.value)

    def test_workload_listing_matches_workload_names(self):
        with pytest.raises(KeyError) as excinfo:
            get_workload("nope")
        for name in workload_names():
            assert name in str(excinfo.value)
