"""Tests for the deterministic RNG helpers."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import choose_distinct_pair, make_rng, spawn_rngs, weighted_choice


class TestMakeRng:
    def test_same_seed_same_stream(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_passthrough_instance(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), random.Random)


class TestSpawn:
    def test_children_are_reproducible(self):
        first = [rng.random() for rng in spawn_rngs(7, 3)]
        second = [rng.random() for rng in spawn_rngs(7, 3)]
        assert first == second

    def test_children_differ_from_each_other(self):
        children = spawn_rngs(7, 5)
        draws = {rng.random() for rng in children}
        assert len(draws) == 5

    def test_count_validation(self):
        assert spawn_rngs(1, 0) == []
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestChooseDistinctPair:
    def test_requires_two_agents(self):
        with pytest.raises(ValueError):
            choose_distinct_pair(make_rng(0), 1)

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=1000))
    def test_pairs_are_distinct_and_in_range(self, n, seed):
        rng = make_rng(seed)
        for _ in range(20):
            a, b = choose_distinct_pair(rng, n)
            assert a != b
            assert 0 <= a < n
            assert 0 <= b < n

    def test_covers_all_ordered_pairs_eventually(self):
        rng = make_rng(3)
        seen = {choose_distinct_pair(rng, 3) for _ in range(500)}
        assert seen == {(a, b) for a in range(3) for b in range(3) if a != b}


class TestWeightedChoice:
    def test_rejects_non_positive_total(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), [0.0, 0.0])

    def test_zero_weight_entries_never_chosen(self):
        rng = make_rng(5)
        picks = {weighted_choice(rng, [0.0, 1.0, 0.0, 2.0]) for _ in range(200)}
        assert picks <= {1, 3}

    def test_distribution_roughly_proportional(self):
        rng = make_rng(11)
        counts = [0, 0]
        for _ in range(4000):
            counts[weighted_choice(rng, [1.0, 3.0])] += 1
        assert 0.6 < counts[1] / sum(counts) < 0.9
