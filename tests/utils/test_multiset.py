"""Unit and property tests for repro.utils.multiset."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.multiset import Multiset


class TestConstruction:
    def test_empty(self):
        bag = Multiset()
        assert len(bag) == 0
        assert bag.is_empty()
        assert bag.distinct() == 0

    def test_from_iterable(self):
        bag = Multiset([1, 2, 2, 3, 3, 3])
        assert bag.count(1) == 1
        assert bag.count(2) == 2
        assert bag.count(3) == 3
        assert len(bag) == 6

    def test_from_mapping(self):
        bag = Multiset({"a": 2, "b": 0, "c": 1})
        assert bag.count("a") == 2
        assert "b" not in bag
        assert len(bag) == 3

    def test_from_counts_rejects_negative(self):
        with pytest.raises(ValueError):
            Multiset({"a": -1})

    def test_copy_is_independent(self):
        bag = Multiset([1, 1])
        other = bag.copy()
        other.add(2)
        assert 2 not in bag
        assert bag == Multiset([1, 1])


class TestMutation:
    def test_add_and_remove(self):
        bag = Multiset()
        bag.add("x", 3)
        bag.remove("x", 2)
        assert bag.count("x") == 1
        bag.remove("x")
        assert "x" not in bag

    def test_remove_too_many_raises(self):
        bag = Multiset(["x"])
        with pytest.raises(KeyError):
            bag.remove("x", 2)

    def test_remove_negative_raises(self):
        bag = Multiset(["x"])
        with pytest.raises(ValueError):
            bag.remove("x", -1)

    def test_discard_clamps(self):
        bag = Multiset(["x", "x"])
        assert bag.discard("x", 5) == 2
        assert bag.is_empty()
        assert bag.discard("x") == 0

    def test_replace(self):
        bag = Multiset(["a", "a", "b"])
        bag.replace("a", "c")
        assert bag.counts() == {"a": 1, "b": 1, "c": 1}

    def test_clear(self):
        bag = Multiset([1, 2, 3])
        bag.clear()
        assert bag.is_empty()


class TestAlgebra:
    def test_union_adds_counts(self):
        left = Multiset([1, 1, 2])
        right = Multiset([1, 3])
        combined = left.union(right)
        assert combined.counts() == {1: 3, 2: 1, 3: 1}
        # The paper writes union as ∪ and + interchangeably over multisets.
        assert combined == left | right == left + right

    def test_difference_clamps_at_zero(self):
        left = Multiset([1, 1, 2])
        right = Multiset([1, 1, 1, 3])
        assert (left - right).counts() == {2: 1}

    def test_intersection(self):
        left = Multiset([1, 1, 2, 2, 2])
        right = Multiset([1, 2, 2, 4])
        assert (left & right).counts() == {1: 1, 2: 2}

    def test_subset(self):
        small = Multiset([1, 2])
        big = Multiset([1, 1, 2, 3])
        assert small.issubset(big)
        assert small <= big
        assert not big.issubset(small)

    def test_equality_ignores_construction_order(self):
        assert Multiset([1, 2, 2]) == Multiset([2, 1, 2])
        assert Multiset([1]) != Multiset([1, 1])

    def test_unhashable_but_frozen_is(self):
        bag = Multiset([1, 1])
        with pytest.raises(TypeError):
            hash(bag)
        assert bag.frozen() == frozenset({(1, 2)})


class TestQueries:
    def test_elements_iterates_with_multiplicity(self):
        bag = Multiset(["a", "b", "b"])
        assert sorted(bag.elements()) == ["a", "b", "b"]
        assert sorted(bag) == ["a", "b", "b"]

    def test_most_common(self):
        bag = Multiset([1, 2, 2, 3, 3, 3])
        assert bag.most_common(1) == [(3, 3)]
        assert bag.most_common() == [(3, 3), (2, 2), (1, 1)]

    def test_support(self):
        bag = Multiset([5, 5, 7])
        assert bag.support() == {5, 7}


# -- property tests ---------------------------------------------------------

items = st.lists(st.integers(min_value=-5, max_value=5), max_size=30)


@given(items, items)
def test_union_length_is_sum(first, second):
    a, b = Multiset(first), Multiset(second)
    assert len(a.union(b)) == len(a) + len(b)


@given(items, items)
def test_difference_then_intersection_partitions(first, second):
    a, b = Multiset(first), Multiset(second)
    assert (a - b) + (a & b) == a


@given(items, items)
def test_subset_iff_difference_empty(first, second):
    a, b = Multiset(first), Multiset(second)
    assert a.issubset(b) == (a - b).is_empty()


@given(items)
def test_roundtrip_through_counts(values):
    bag = Multiset(values)
    assert Multiset.from_counts(bag.counts()) == bag
    assert sorted(bag.elements()) == sorted(values)
