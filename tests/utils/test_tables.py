"""Tests for the table-rendering helpers."""

import pytest

from repro.utils.tables import format_markdown_table, format_series, format_table


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "value"], [["circles", 27], ["baseline", 128]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "circles" in lines[2]
        assert "128" in lines[3]

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159265]])
        assert "3.142" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestMarkdown:
    def test_structure(self):
        text = format_markdown_table(["k", "states"], [[2, 8], [3, 27]])
        lines = text.splitlines()
        assert lines[0] == "| k | states |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 2 | 8 |"
        assert lines[3] == "| 3 | 27 |"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])


class TestSeries:
    def test_series_pairs_up(self):
        text = format_series("energy", [0, 1, 2], [30, 20, 10])
        assert "energy" in text
        assert "30" in text and "10" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("y", [1, 2], [1])
