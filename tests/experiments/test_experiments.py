"""Smoke-level integration tests: every experiment runs end-to-end on tiny parameters.

The benchmarks exercise the experiments at their reporting scale; these tests
only assert that each experiment produces a well-formed result and that the
headline qualitative claims hold at toy scale.
"""

from repro.experiments import e1_state_complexity, e2_stabilization, e3_correctness
from repro.experiments import e4_stable_structure, e5_energy, e6_convergence
from repro.experiments import e7_extensions, e8_scheduler_sensitivity


class TestE1:
    def test_table_shape_and_cubic_column(self):
        result = e1_state_complexity.run(ks=(2, 3), reachable_num_agents=8, reachable_steps=200)
        assert result.experiment_id == "E1"
        assert result.column("k") == [2, 3]
        assert result.column("circles (declared)") == [8, 27]
        assert result.column("lower bound k^2") == [4, 9]
        assert result.column("prior upper bound k^7") == [128, 2187]
        touched = result.column("circles (touched)")
        assert all(value <= declared for value, declared in zip(touched, [8, 27]))


class TestE2:
    def test_exchanges_finite_and_potential_decreasing(self):
        result = e2_stabilization.run(populations=(6, 10), ks=(3,), seed=5)
        assert all(result.column("g(C) strictly decreasing"))
        assert all(value is not None for value in result.column("interactions to stability"))
        assert all(value < 10_000 for value in result.column("ket exchanges"))

    def test_batched_engine_measures_the_same_claims(self):
        result = e2_stabilization.run(populations=(20, 30), ks=(3,), seed=5, engine="batch")
        assert all(result.column("g(C) strictly decreasing"))
        assert all(value is not None for value in result.column("interactions to stability"))


class TestE3:
    def test_all_checks_pass(self):
        result = e3_correctness.run(
            small_inputs=((0, 0, 1), (0, 1, 1, 2)),
            schedulers=("uniform-random", "round-robin"),
            num_agents=8,
            num_colors=3,
            trials=2,
            seed=3,
        )
        assert all(result.column("correct"))

    def test_exact_correctness_column_is_one_on_model_checked_inputs(self):
        result = e3_correctness.run(
            small_inputs=((0, 0, 1), (0, 1, 1, 2)),
            schedulers=(),
            num_agents=8,
            num_colors=3,
            trials=2,
            seed=3,
        )
        # Theorem 3.7: the analytical correctness probability is exactly 1.
        assert result.column("exact P(correct)") == ["1.000000", "1.000000"]

    def test_exact_column_degrades_on_inputs_too_large_for_the_chain(self, monkeypatch):
        """The model checker tolerates larger inputs than the exact solve;
        E3 must keep its verdict and render '—' instead of crashing."""
        from repro.exact import ChainTooLarge

        def too_large(*args, **kwargs):
            raise ChainTooLarge("simulated: configuration chain over the cap")

        monkeypatch.setattr(
            e3_correctness, "exact_correctness_probability", too_large
        )
        result = e3_correctness.run(
            small_inputs=((0, 0, 1),), schedulers=(), num_agents=8, num_colors=3,
            trials=1, seed=3,
        )
        assert result.column("exact P(correct)") == ["—"]
        assert result.column("correct") == [True]


class TestE4:
    def test_structure_matches_prediction(self):
        result = e4_stable_structure.run(populations=(8,), ks=(3,), trials=2, seed=1)
        assert result.column("bra/ket invariant held") == ["2/2"]
        assert result.column("stable multiset = union of f(G_p)") == ["2/2"]


class TestE5:
    def test_energy_reaches_minimum_monotonically(self):
        result = e5_energy.run(populations=(8,), ks=(4,), seed=2)
        finals = result.column("final (paper rule)")
        minima = result.column("predicted minimum")
        assert finals == minima
        assert all(result.column("monotone"))
        assert result.column("final (Gillespie SSA)") == minima


class TestE6:
    def test_circles_always_correct_in_comparison(self):
        result = e6_convergence.run(populations=(10,), ks=(2,), trials=2, seed=4, adversarial=False)
        rows = {row[0]: row for row in result.rows}
        assert rows["circles"][-1] == "2/2"
        assert rows["exact-majority"][-1] == "2/2"

    def test_agent_engine_path_still_supported(self):
        result = e6_convergence.run(
            populations=(10,), ks=(2,), trials=2, seed=4, adversarial=False, engine="agent"
        )
        rows = {row[0]: row for row in result.rows}
        assert rows["circles"][-1] == "2/2"

    def test_exact_expected_interactions_column_at_small_n(self):
        result = e6_convergence.run(
            populations=(6,), ks=(2,), trials=2, seed=4, adversarial=False
        )
        exact_column = dict(zip(result.column("protocol"), result.column("exact E[interactions]")))
        # Every k=2 protocol at n=6 is exactly analyzable: numeric cells only.
        for protocol, cell in exact_column.items():
            assert cell not in ("—", "∞"), protocol
            assert float(cell) > 0
        # The analytical value sits in the same ballpark as the empirical
        # mean (they estimate the same quantity; trials are few, so loose).
        means = dict(zip(result.column("protocol"), result.column("mean interactions")))
        circles_exact = float(exact_column["circles"])
        assert 0.2 * circles_exact <= means["circles"] <= 5 * circles_exact

    def test_exact_column_degrades_above_the_size_threshold(self):
        result = e6_convergence.run(
            populations=(16,), ks=(2,), trials=2, seed=4, adversarial=False
        )
        assert set(result.column("exact E[interactions]")) == {"—"}


class TestE7:
    def test_extension_state_counts(self):
        result = e7_extensions.run(ks=(3,), num_agents=10, trials=1, seed=6)
        assert result.column("tie-report states (2k^3)") == [54]
        assert result.column("ordering states (2k^2)") == [18]
        assert result.column("unordered states (2k^4)") == [162]
        assert result.column("tie-report correct (unique majority)") == [1.0]


class TestE8:
    def test_fair_schedulers_correct_unfair_not(self):
        result = e8_scheduler_sensitivity.run(num_agents=9, trials=2, seed=7)
        rows = {row[0]: row for row in result.rows}
        assert rows["uniform-random"][-1] == "2/2"
        assert rows["round-robin"][-1] == "2/2"
        assert rows["greedy-stall"][-1] == "2/2"
        assert rows["isolation"][-1] == "0/2"

    def test_batched_engine_runs_the_fair_baseline(self):
        result = e8_scheduler_sensitivity.run(num_agents=9, trials=2, seed=7, engine="batch")
        rows = {row[0]: row for row in result.rows}
        assert rows["uniform-random"][-1] == "2/2"
        assert rows["isolation"][-1] == "0/2"
