"""Tests for the experiment harness plumbing."""

import pytest

from repro.experiments.harness import (
    ExperimentResult,
    experiment_catalog,
    get_experiment,
    register_experiment,
)


class TestExperimentResult:
    def _result(self) -> ExperimentResult:
        result = ExperimentResult("E0", "demo", headers=("k", "states"))
        result.add_row(2, 8)
        result.add_row(3, 27)
        result.add_note("cubic growth")
        return result

    def test_add_row_validates_length(self):
        result = self._result()
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_to_text(self):
        text = self._result().to_text()
        assert "[E0] demo" in text
        assert "27" in text
        assert "note: cubic growth" in text

    def test_to_markdown(self):
        markdown = self._result().to_markdown()
        assert markdown.startswith("### E0 — demo")
        assert "| 3 | 27 |" in markdown
        assert "* cubic growth" in markdown

    def test_column(self):
        result = self._result()
        assert result.column("states") == [8, 27]
        with pytest.raises(KeyError):
            result.column("missing")


class TestRegistry:
    def test_builtin_experiments_registered(self):
        assert {"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"} <= set(experiment_catalog())

    def test_lookup_is_case_insensitive(self):
        assert get_experiment("e1") is get_experiment("E1")

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_register_custom(self):
        def runner() -> ExperimentResult:
            return ExperimentResult("EX", "custom", headers=("a",))

        register_experiment("EX-custom-test", runner)
        assert "EX-CUSTOM-TEST" in experiment_catalog()
        assert get_experiment("ex-custom-test") is runner
