"""Tests for the Markdown report generator."""

import pytest

from repro.experiments import register_experiment
from repro.experiments.harness import ExperimentResult
from repro.experiments.report import generate_report, main


def _toy_experiment() -> ExperimentResult:
    result = ExperimentResult("E0-TOY", "toy experiment", headers=("k", "value"))
    result.add_row(2, 8)
    result.add_note("just a fixture")
    return result


register_experiment("E0-TOY", _toy_experiment)


class TestGenerateReport:
    def test_selected_experiment_renders(self):
        report = generate_report(["E0-TOY"])
        assert report.startswith("# Experiment report")
        assert "### E0-TOY — toy experiment" in report
        assert "| 2 | 8 |" in report
        assert "just a fixture" in report

    def test_multiple_sections_in_order(self):
        report = generate_report(["E0-TOY", "E0-TOY"])
        assert report.count("### E0-TOY") == 2


class TestCli:
    def test_prints_to_stdout(self, capsys):
        assert main(["E0-TOY"]) == 0
        captured = capsys.readouterr()
        assert "toy experiment" in captured.out

    def test_writes_to_file_legacy_positional(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main([str(target), "E0-TOY"]) == 0
        assert "toy experiment" in target.read_text(encoding="utf-8")
        assert str(target) in capsys.readouterr().out

    def test_writes_to_file_with_output_flag(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["-o", str(target), "E0-TOY"]) == 0
        assert "toy experiment" in target.read_text(encoding="utf-8")
        assert str(target) in capsys.readouterr().out

    def test_output_flag_after_positionals(self, tmp_path):
        target = tmp_path / "report.md"
        assert main(["E0-TOY", "--output", str(target)]) == 0
        report = target.read_text(encoding="utf-8")
        assert report.count("### E0-TOY") == 1

    def test_unknown_experiment_id_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            main(["E-NOPE"])
