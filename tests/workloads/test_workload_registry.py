"""Tests for the workload registry."""

import pytest

from repro.workloads.distributions import decisive_isolation, decisive_isolation_set
from repro.workloads.registry import (
    DEFAULT_WORKLOADS,
    WorkloadRegistry,
    get_workload,
    register_workload,
    workload_names,
)


class TestDefaultRegistry:
    def test_builtins_are_registered(self):
        names = workload_names()
        for name in (
            "planted-majority",
            "uniform",
            "zipf",
            "near-tie",
            "exact-tie",
            "adversarial-two-block",
            "decisive-isolation",
        ):
            assert name in names
            assert name in DEFAULT_WORKLOADS

    def test_underscore_names_normalize(self):
        assert get_workload("planted_majority") is get_workload("planted-majority")
        assert "adversarial_two_block" in DEFAULT_WORKLOADS

    def test_generate_forwards_params(self):
        colors = DEFAULT_WORKLOADS.generate("planted-majority", 12, 3, seed=1, majority_color=2)
        assert len(colors) == 12
        assert colors.count(2) == max(colors.count(c) for c in range(3))

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            get_workload("nope")


class TestRegistration:
    def test_register_and_duplicate_protection(self):
        registry = WorkloadRegistry()
        generator = lambda n, k, seed=None: [0] * n  # noqa: E731
        registry.register("all-zero", generator)
        assert registry.get("all-zero") is generator
        assert registry.names() == ["all-zero"]
        with pytest.raises(ValueError, match="already registered"):
            registry.register("all_zero", generator)  # normalized collision
        registry.register("all-zero", generator, overwrite=True)

    def test_custom_workload_reaches_sweeps(self):
        from repro.api.executor import execute_run
        from repro.api.spec import RunSpec

        if "all-majority" not in DEFAULT_WORKLOADS:
            register_workload("all-majority", lambda n, k, seed=None: [0] * (n - 1) + [1])
        record = execute_run(
            RunSpec(protocol="circles", n=8, k=2, workload="all-majority",
                    engine="batch", seed=1, max_steps=10_000)
        )
        assert record.correct
        assert record.majority == 0


class TestDecisiveIsolation:
    def test_isolation_flips_the_visible_majority(self):
        n = 15
        colors = decisive_isolation(n, 2)
        isolated = set(decisive_isolation_set(n))
        assert colors.count(0) == n // 2 + 1  # true majority
        visible = [color for index, color in enumerate(colors) if index not in isolated]
        assert visible.count(1) > visible.count(0)  # flipped for the interacting rest

    def test_deterministic_regardless_of_seed(self):
        assert decisive_isolation(9, 2, seed=1) == decisive_isolation(9, 2, seed=99)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            decisive_isolation(6, 2)
        with pytest.raises(ValueError):
            decisive_isolation_set(6)
