"""Tests for the input workload generators."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy_sets import has_unique_majority, predicted_majority
from repro.workloads.distributions import (
    adversarial_two_block,
    exact_tie,
    near_tie,
    planted_majority,
    uniform_random_colors,
    zipf_colors,
)


class TestPlantedMajority:
    def test_planted_color_wins(self):
        colors = planted_majority(20, 4, majority_color=2, seed=1)
        assert len(colors) == 20
        assert predicted_majority(colors) == 2

    def test_margin_is_respected(self):
        colors = planted_majority(30, 3, margin=5, seed=2)
        counts = Counter(colors)
        runner_up = max(count for color, count in counts.items() if color != 0)
        assert counts[0] - runner_up >= 5

    def test_all_colors_in_range(self):
        colors = planted_majority(15, 5, seed=3)
        assert all(0 <= color < 5 for color in colors)

    def test_single_color_universe(self):
        assert planted_majority(6, 1) == [0] * 6

    def test_validation(self):
        with pytest.raises(ValueError):
            planted_majority(1, 2)
        with pytest.raises(ValueError):
            planted_majority(10, 2, majority_color=5)
        with pytest.raises(ValueError):
            planted_majority(10, 2, margin=0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=60),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_always_produces_unique_majority(self, n, k, seed):
        colors = planted_majority(n, k, seed=seed)
        assert len(colors) == n
        assert has_unique_majority(colors)
        assert predicted_majority(colors) == 0


class TestUniformAndZipf:
    def test_uniform_length_and_range(self):
        colors = uniform_random_colors(50, 6, seed=4)
        assert len(colors) == 50
        assert set(colors) <= set(range(6))

    def test_uniform_with_required_majority(self):
        colors = uniform_random_colors(12, 3, seed=5, require_unique_majority=True)
        assert has_unique_majority(colors)

    def test_uniform_is_reproducible(self):
        assert uniform_random_colors(20, 4, seed=6) == uniform_random_colors(20, 4, seed=6)

    def test_zipf_is_skewed_toward_low_colors(self):
        colors = zipf_colors(2000, 5, exponent=1.5, seed=7)
        counts = Counter(colors)
        assert counts[0] > counts[4]

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_colors(10, 3, exponent=0)


class TestNearTieAndExactTie:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=4, max_value=50),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_near_tie_has_unique_majority_with_margin_one(self, n, k, seed):
        colors = near_tie(n, k, seed=seed)
        assert len(colors) == n
        counts = Counter(colors)
        top_two = sorted(counts.values(), reverse=True)[:2]
        assert has_unique_majority(colors)
        if len(top_two) == 2:
            assert top_two[0] - top_two[1] >= 1

    def test_exact_tie_is_tied(self):
        colors = exact_tie(12, 4, seed=8)
        counts = Counter(colors)
        top = max(counts.values())
        assert sum(1 for value in counts.values() if value == top) == 2
        assert not has_unique_majority(colors)

    def test_exact_tie_uses_requested_colors(self):
        colors = exact_tie(10, 4, tied_colors=(1, 3), seed=9)
        counts = Counter(colors)
        assert counts[1] == counts[3] == max(counts.values())

    def test_exact_tie_validation(self):
        with pytest.raises(ValueError):
            exact_tie(3, 2)
        with pytest.raises(ValueError):
            exact_tie(10, 3, tied_colors=(1, 1))
        with pytest.raises(ValueError):
            exact_tie(10, 2, tied_colors=(0, 5))
        with pytest.raises(ValueError):
            exact_tie(5, 2)  # odd split between exactly two colors is impossible


class TestAdversarial:
    def test_color_zero_is_the_plurality(self):
        colors = adversarial_two_block(21, 4, seed=10)
        assert len(colors) == 21
        assert predicted_majority(colors) == 0

    def test_spoilers_jointly_outnumber_the_plurality(self):
        colors = adversarial_two_block(30, 5, seed=11)
        counts = Counter(colors)
        spoilers = sum(count for color, count in counts.items() if color != 0)
        assert spoilers >= counts[0] - 1

    def test_needs_three_colors(self):
        with pytest.raises(ValueError):
            adversarial_two_block(10, 2)
