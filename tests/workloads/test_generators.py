"""Tests for named workload specs."""

import pytest

from repro.core.greedy_sets import has_unique_majority
from repro.workloads.generators import WorkloadSpec, generate_workload, workload_catalog


class TestCatalog:
    def test_catalog_contents(self):
        names = workload_catalog()
        assert "planted-majority" in names
        assert "uniform" in names
        assert "zipf" in names
        assert "near-tie" in names
        assert "exact-tie" in names
        assert "adversarial-two-block" in names

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            generate_workload("nope", 10, 3)


class TestGeneration:
    def test_generate_by_name(self):
        colors = generate_workload("planted-majority", 12, 3, seed=1)
        assert len(colors) == 12
        assert has_unique_majority(colors)

    def test_parameters_are_forwarded(self):
        colors = generate_workload("planted-majority", 12, 3, seed=1, majority_color=2)
        assert colors.count(2) == max(colors.count(c) for c in range(3))

    def test_spec_roundtrip(self):
        spec = WorkloadSpec("planted-majority", {"majority_color": 1})
        colors = spec.generate(10, 3, seed=5)
        assert colors.count(1) == max(colors.count(c) for c in range(3))

    def test_spec_is_frozen(self):
        spec = WorkloadSpec("uniform")
        with pytest.raises(AttributeError):
            spec.name = "zipf"  # type: ignore[misc]

    def test_reproducibility_through_spec(self):
        spec = WorkloadSpec("uniform")
        assert spec.generate(20, 4, seed=3) == spec.generate(20, 4, seed=3)
