"""Tests for the convergence criteria."""

import pytest

from repro.core.circles import CirclesProtocol
from repro.core.state import CirclesState
from repro.protocols.exact_majority import ExactMajorityProtocol, MajorityState
from repro.simulation.convergence import OutputConsensus, SilentConfiguration, StableCircles
from repro.utils.multiset import Multiset


class TestOutputConsensus:
    def test_agreement_detected(self):
        protocol = CirclesProtocol(3)
        states = [CirclesState(0, 1, 2), CirclesState(1, 0, 2)]
        assert OutputConsensus().is_converged(protocol, states)
        assert OutputConsensus(target=2).is_converged(protocol, states)
        assert not OutputConsensus(target=0).is_converged(protocol, states)

    def test_disagreement_detected(self):
        protocol = CirclesProtocol(3)
        states = [CirclesState(0, 1, 2), CirclesState(1, 0, 1)]
        assert not OutputConsensus().is_converged(protocol, states)

    def test_empty_population_is_not_converged(self):
        assert not OutputConsensus().is_converged(CirclesProtocol(2), [])

    def test_configuration_variant(self):
        protocol = CirclesProtocol(3)
        config = Multiset([CirclesState(0, 1, 2), CirclesState(1, 0, 2), CirclesState(1, 0, 2)])
        assert OutputConsensus().is_converged_configuration(protocol, config)
        assert OutputConsensus(target=2).is_converged_configuration(protocol, config)
        assert not OutputConsensus(target=1).is_converged_configuration(protocol, config)


class TestSilentConfiguration:
    def test_silent_exact_majority_configuration(self):
        protocol = ExactMajorityProtocol()
        silent = [MajorityState(0, True), MajorityState(0, False)]
        assert SilentConfiguration().is_converged(protocol, silent)

    def test_noisy_configuration(self):
        protocol = ExactMajorityProtocol()
        noisy = [MajorityState(0, True), MajorityState(1, True)]
        assert not SilentConfiguration().is_converged(protocol, noisy)

    def test_single_copy_of_a_state_does_not_self_interact(self):
        protocol = ExactMajorityProtocol()
        # One strong-0 and one weak-0: strong converts weak but weak is already 0 ... the
        # pair (strong0, weak0) is a no-op, so this two-agent configuration is silent.
        states = [MajorityState(0, True), MajorityState(0, False)]
        assert SilentConfiguration().is_converged(protocol, states)

    def test_circles_stable_is_not_necessarily_silent(self):
        """Circles keeps broadcasting outputs, so stability can precede silence."""
        protocol = CirclesProtocol(2)
        # Stable bra-kets, but one agent has a stale output: a diagonal interaction
        # would still change it, so the configuration is stable yet not silent.
        states = [CirclesState(0, 0, 0), CirclesState(0, 1, 0), CirclesState(1, 0, 1)]
        assert StableCircles().is_converged(protocol, states) is False  # outputs differ
        assert not SilentConfiguration().is_converged(protocol, states)


class TestStableCircles:
    def test_requires_circles_protocol(self):
        with pytest.raises(TypeError):
            StableCircles().is_converged(ExactMajorityProtocol(), [])

    def test_converged_configuration(self):
        protocol = CirclesProtocol(2)
        states = [CirclesState(0, 0, 0), CirclesState(0, 1, 0), CirclesState(1, 0, 0)]
        assert StableCircles().is_converged(protocol, states)

    def test_not_converged_when_outputs_lag(self):
        protocol = CirclesProtocol(2)
        states = [CirclesState(0, 0, 0), CirclesState(0, 1, 0), CirclesState(1, 0, 1)]
        assert not StableCircles().is_converged(protocol, states)

    def test_not_converged_when_exchange_possible(self):
        protocol = CirclesProtocol(2)
        states = [CirclesState(0, 0, 0), CirclesState(1, 1, 1)]
        assert not StableCircles().is_converged(protocol, states)

    def test_agreement_must_match_a_diagonal(self):
        protocol = CirclesProtocol(3)
        # All agree on color 2 but the only diagonal is ⟨0|0⟩: not the paper's stable shape.
        states = [CirclesState(0, 0, 2), CirclesState(1, 2, 2), CirclesState(2, 1, 2)]
        assert not StableCircles().is_converged(protocol, states)

    def test_configuration_variant_matches_list_variant(self):
        protocol = CirclesProtocol(2)
        states = [CirclesState(0, 0, 0), CirclesState(0, 1, 0), CirclesState(1, 0, 0)]
        assert StableCircles().is_converged_configuration(protocol, Multiset(states))
        with pytest.raises(TypeError):
            StableCircles().is_converged_configuration(ExactMajorityProtocol(), Multiset())


class TestCountLevelFastPaths:
    """The count-level criterion variants must agree with the multiset ones."""

    def _compiled_counts(self, protocol, states):
        from repro.compile import compile_from_states

        compiled = compile_from_states(protocol, set(states))
        counts = [0] * compiled.num_states
        for state in states:
            counts[compiled.encode(state)] += 1
        return compiled, counts

    def test_output_consensus_on_counts(self):
        protocol = CirclesProtocol(3)
        agreed = [CirclesState(0, 1, 2), CirclesState(1, 0, 2), CirclesState(1, 0, 2)]
        compiled, counts = self._compiled_counts(protocol, agreed)
        assert OutputConsensus().is_converged_counts(protocol, compiled, counts)
        assert OutputConsensus(target=2).is_converged_counts(protocol, compiled, counts)
        assert not OutputConsensus(target=0).is_converged_counts(protocol, compiled, counts)

    def test_output_consensus_on_single_state_population(self):
        protocol = CirclesProtocol(3)
        lone = [CirclesState(1, 1, 1)] * 4
        compiled, counts = self._compiled_counts(protocol, lone)
        assert OutputConsensus().is_converged_counts(protocol, compiled, counts)
        assert OutputConsensus().is_converged(protocol, lone[:1])
        assert OutputConsensus().is_converged_configuration(protocol, Multiset(lone))

    def test_output_consensus_on_all_zero_counts(self):
        protocol = CirclesProtocol(3)
        compiled, counts = self._compiled_counts(protocol, [CirclesState(0, 0, 0)])
        assert not OutputConsensus().is_converged_counts(protocol, compiled, [0] * len(counts))

    def test_stable_circles_on_counts_matches_configuration_variant(self):
        protocol = CirclesProtocol(2)
        states = [CirclesState(0, 0, 0), CirclesState(0, 1, 0), CirclesState(1, 0, 0)]
        compiled, counts = self._compiled_counts(protocol, states)
        assert StableCircles().is_converged_counts(protocol, compiled, counts)
        assert StableCircles().is_converged_configuration(protocol, Multiset(states))

    def test_silent_configuration_has_no_counts_fast_path(self):
        # Silence is answered by the engine's incremental tracker instead;
        # the criterion itself defers so `incremental=False` stays a true
        # from-scratch baseline.
        protocol = CirclesProtocol(2)
        states = [CirclesState(0, 0, 0)] * 2
        compiled, counts = self._compiled_counts(protocol, states)
        assert SilentConfiguration().is_converged_counts(protocol, compiled, counts) is None

    def test_base_criterion_default_defers(self):
        assert (
            OutputConsensus.__mro__[1].is_converged_counts(
                OutputConsensus(), CirclesProtocol(2), None, []
            )
            is None
        )


class TestCriterionEdgeCases:
    def test_output_consensus_on_empty_states_and_configuration(self):
        protocol = CirclesProtocol(2)
        assert not OutputConsensus().is_converged(protocol, [])
        assert not OutputConsensus().is_converged_configuration(protocol, Multiset())

    def test_silent_on_empty_and_singleton_configurations(self):
        protocol = CirclesProtocol(2)
        # No present pair can interact: vacuously silent.
        assert SilentConfiguration().is_converged(protocol, [])
        assert SilentConfiguration().is_converged(protocol, [CirclesState(0, 1, 0)])

    def test_stable_circles_on_empty_configuration(self):
        protocol = CirclesProtocol(2)
        assert not StableCircles().is_converged(protocol, [])
        assert not StableCircles().is_converged_configuration(protocol, Multiset())
