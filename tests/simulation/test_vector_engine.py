"""VectorReplicateSimulation / ReplicateGroup: lockstep replicates, bit-for-bit.

The contract under test: every row of a replicate group is *bit-identical* to
a serial :class:`BatchConfigurationSimulation` run with the same seed — same
convergence verdict, same retirement step, same interactions-changed count,
same ket-exchange count, same final configuration.  That holds on both
representations: the looped-batch fallback (small populations, or numpy-free
installs) and the shared-state-matrix kernel path (``n >= 4096`` with numpy).
"""

import pytest

from repro.core.circles import CirclesProtocol
from repro.protocols.base import PopulationProtocol, TransitionResult
from repro.simulation.batch_engine import BatchConfigurationSimulation
from repro.simulation.convergence import SilentConfiguration, StableCircles
from repro.simulation.observers import KetExchangeObserver
from repro.simulation.vector_engine import (
    ReplicateGroup,
    VectorReplicateSimulation,
)

#: Population size at or above the batch engine's numpy gate — groups built
#: at this size exercise the shared-matrix kernel path (when numpy is
#: installed; without it the fallback runs and the assertions still hold).
KERNEL_N = 4096


class MinEpidemic(PopulationProtocol[int]):
    """Both agents adopt the smaller value — silent once the minimum spreads."""

    name = "min-epidemic"

    def states(self):
        return list(range(self.num_colors))

    def initial_state(self, color: int) -> int:
        return color

    def output(self, state: int) -> int:
        return state

    def transition(self, a: int, b: int) -> TransitionResult[int]:
        low = min(a, b)
        return TransitionResult(low, low, changed=low != a or low != b)


def serial_batch_rows(protocol, colors, seeds, criterion, max_steps, count_ket=False):
    """The reference: one looped batch engine per seed."""
    outcomes = []
    for seed in seeds:
        row = BatchConfigurationSimulation.from_colors(protocol, colors, seed=seed)
        observer = None
        if count_ket:
            observer = KetExchangeObserver()
            row.add_observer(observer)
        converged = row.run(max_steps, criterion=criterion)
        outcomes.append(
            (
                converged,
                row.steps_taken,
                row.interactions_changed,
                observer.exchanges if observer else None,
                row.configuration(),
            )
        )
    return outcomes


def assert_rows_match(group_outcomes, reference):
    assert len(group_outcomes) == len(reference)
    for outcome, (converged, steps, changed, ket, configuration) in zip(
        group_outcomes, reference
    ):
        assert outcome.converged == converged
        assert outcome.steps == steps
        assert outcome.interactions_changed == changed
        assert outcome.ket_exchanges == ket
        assert outcome.configuration == configuration


class TestEngineRegistration:
    def test_vector_is_a_batch_engine(self):
        """R=1 degenerate form: the registry entry runs as a plain batch
        engine, so the conformance/golden suites cover it by registration."""
        assert issubclass(VectorReplicateSimulation, BatchConfigurationSimulation)
        assert VectorReplicateSimulation.engine_name == "vector"
        assert VectorReplicateSimulation.supports_replicates is True

    def test_r1_run_matches_batch(self):
        protocol = CirclesProtocol(3)
        colors = [0] * 20 + [1] * 12 + [2] * 8
        batch = BatchConfigurationSimulation.from_colors(protocol, colors, seed=5)
        vector = VectorReplicateSimulation.from_colors(protocol, colors, seed=5)
        assert batch.run(2_000, criterion=StableCircles()) == vector.run(
            2_000, criterion=StableCircles()
        )
        assert batch.configuration() == vector.configuration()
        assert batch.steps_taken == vector.steps_taken


class TestFallbackPath:
    """Small populations: the group loops per-row batch engines."""

    def test_rows_match_serial_batch_runs(self):
        protocol = CirclesProtocol(3)
        colors = [0] * 24 + [1] * 16 + [2] * 8
        seeds = [101, 202, 303, 404]
        group = VectorReplicateSimulation.replicate_group_from_colors(
            protocol, colors, seeds, count_ket_exchanges=True
        )
        outcomes = group.run(20_000, criterion=StableCircles())
        assert_rows_match(
            outcomes,
            serial_batch_rows(protocol, colors, seeds, StableCircles(), 20_000, count_ket=True),
        )

    def test_criterion_free_run_spends_the_full_budget(self):
        group = VectorReplicateSimulation.replicate_group_from_colors(
            CirclesProtocol(3), [0] * 10 + [1] * 10, seeds=[1, 2]
        )
        outcomes = group.run(500)
        assert [outcome.steps for outcome in outcomes] == [500, 500]
        assert all(not outcome.converged for outcome in outcomes)


class TestKernelPath:
    """``n >= 4096``: one shared state matrix, rows retiring independently."""

    def test_rows_match_serial_batch_runs(self):
        protocol = CirclesProtocol(4)
        colors = [0] * 2048 + [1] * 1024 + [2] * 512 + [3] * 512
        assert len(colors) == KERNEL_N
        seeds = [7, 8, 9]
        group = VectorReplicateSimulation.replicate_group_from_colors(
            protocol, colors, seeds, count_ket_exchanges=True
        )
        outcomes = group.run(30_000, criterion=StableCircles())
        assert_rows_match(
            outcomes,
            serial_batch_rows(protocol, colors, seeds, StableCircles(), 30_000, count_ket=True),
        )

    def test_midrun_silent_retirement_steps_match(self):
        """Rows hit quiescence at different checks; each retirement step must
        equal the serial engine's under the incremental silent criterion."""
        protocol = MinEpidemic(3)
        colors = [0] + [1] * 2047 + [2] * 2048
        seeds = [11, 12, 13, 14, 15]
        criterion = SilentConfiguration()
        group = VectorReplicateSimulation.replicate_group_from_colors(
            protocol, colors, seeds
        )
        outcomes = group.run(400_000, criterion=criterion)
        reference = serial_batch_rows(protocol, colors, seeds, SilentConfiguration(), 400_000)
        assert_rows_match(outcomes, reference)
        assert all(outcome.converged for outcome in outcomes)
        # Distinct retirement steps prove rows really retire independently.
        assert len({outcome.steps for outcome in outcomes}) > 1

    def test_all_rows_converged_at_step_zero(self):
        """An already-silent start retires every row before any interaction."""
        protocol = MinEpidemic(2)
        colors = [0] * KERNEL_N
        group = VectorReplicateSimulation.replicate_group_from_colors(
            protocol, colors, seeds=[1, 2, 3]
        )
        outcomes = group.run(10_000, criterion=SilentConfiguration())
        assert all(outcome.converged for outcome in outcomes)
        assert [outcome.steps for outcome in outcomes] == [0, 0, 0]

    def test_r1_group(self):
        protocol = CirclesProtocol(3)
        colors = [0] * 2048 + [1] * 1024 + [2] * 1024
        group = VectorReplicateSimulation.replicate_group_from_colors(
            protocol, colors, seeds=[42]
        )
        (outcome,) = group.run(5_000, criterion=StableCircles())
        (reference,) = serial_batch_rows(protocol, colors, [42], StableCircles(), 5_000)
        assert (
            outcome.converged,
            outcome.steps,
            outcome.interactions_changed,
            outcome.configuration,
        ) == (reference[0], reference[1], reference[2], reference[4])


class TestGroupLifecycle:
    def test_group_runs_only_once(self):
        group = VectorReplicateSimulation.replicate_group_from_colors(
            CirclesProtocol(3), [0] * 10 + [1] * 10, seeds=[1, 2]
        )
        group.run(100)
        with pytest.raises(RuntimeError, match="only run once"):
            group.run(100)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            ReplicateGroup(CirclesProtocol(3), [0] * 10 + [1] * 10, seeds=[])

    def test_invalid_run_arguments_rejected(self):
        group = VectorReplicateSimulation.replicate_group_from_colors(
            CirclesProtocol(3), [0] * 10 + [1] * 10, seeds=[1, 2]
        )
        with pytest.raises(ValueError):
            group.run(-1)
        with pytest.raises(ValueError):
            group.run(100, check_interval=0)
