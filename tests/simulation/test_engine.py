"""Tests for the agent-level simulation engine."""

import pytest

from repro.core.circles import CirclesProtocol
from repro.core.potential import configuration_energy
from repro.scheduling.adversarial import SingleColorScheduler
from repro.scheduling.round_robin import RoundRobinScheduler
from repro.simulation.convergence import OutputConsensus, StableCircles
from repro.simulation.engine import AgentSimulation
from repro.simulation.population import Population
from repro.simulation.trace import Trace


def _simulation(colors, scheduler=None, **kwargs):
    protocol = CirclesProtocol(max(colors) + 1)
    population = Population.from_colors(protocol, colors)
    scheduler = scheduler or RoundRobinScheduler(len(population))
    return AgentSimulation(protocol, population, scheduler, **kwargs), protocol


class TestStep:
    def test_step_applies_transition_to_scheduled_pair(self):
        protocol = CirclesProtocol(2)
        population = Population.from_colors(protocol, [0, 1])
        scheduler = SingleColorScheduler(2, [(0, 1)])
        simulation = AgentSimulation(protocol, population, scheduler)
        record = simulation.step()
        assert record.step == 0
        assert (record.initiator, record.responder) == (0, 1)
        assert record.changed
        assert simulation.states()[0].ket == 1

    def test_counters(self):
        simulation, _ = _simulation([0, 0, 1])
        for _ in range(10):
            simulation.step()
        assert simulation.steps_taken == 10
        assert 0 < simulation.interactions_changed <= 10

    def test_scheduler_population_size_mismatch(self):
        protocol = CirclesProtocol(2)
        population = Population.from_colors(protocol, [0, 1, 1])
        with pytest.raises(ValueError):
            AgentSimulation(protocol, population, RoundRobinScheduler(4))


class TestRun:
    def test_run_without_criterion_runs_exact_steps(self):
        simulation, _ = _simulation([0, 1, 1])
        assert simulation.run(25) is False
        assert simulation.steps_taken == 25

    def test_run_with_criterion_stops_early(self):
        simulation, protocol = _simulation([0, 0, 0, 1])
        converged = simulation.run(10_000, criterion=StableCircles(), check_interval=4)
        assert converged
        assert simulation.steps_taken < 10_000
        assert StableCircles().is_converged(protocol, simulation.states())

    def test_run_returns_false_when_budget_too_small(self):
        simulation, _ = _simulation([0, 0, 1, 1, 2])
        assert simulation.run(1, criterion=OutputConsensus()) in (True, False)

    def test_negative_budget_rejected(self):
        simulation, _ = _simulation([0, 1])
        with pytest.raises(ValueError):
            simulation.run(-1)

    def test_immediately_converged_input(self):
        simulation, _ = _simulation([1, 1, 1])
        assert simulation.run(50, criterion=OutputConsensus()) is True
        assert simulation.steps_taken == 0


class TestTraceAndMetrics:
    def test_trace_records_every_step_with_metrics(self):
        protocol = CirclesProtocol(3)
        population = Population.from_colors(protocol, [0, 1, 2])
        trace = Trace()
        simulation = AgentSimulation(
            protocol,
            population,
            RoundRobinScheduler(3),
            trace=trace,
            metrics={"energy": lambda states: configuration_energy(states, 3)},
        )
        for _ in range(7):
            simulation.step()
        assert len(trace) == 7
        energies = [value for _, value in trace.series("energy")]
        assert len(energies) == 7
        assert all(isinstance(value, int) for value in energies)
        assert energies == sorted(energies, reverse=True) or min(energies) >= 0

    def test_outputs_and_counts(self):
        simulation, _ = _simulation([0, 0, 1])
        counts = simulation.output_counts()
        assert counts == {0: 2, 1: 1}
        assert len(simulation.outputs()) == 3
