"""Tests for trace recording."""

from repro.simulation.trace import Trace, TraceEvent


class TestTrace:
    def _sample(self) -> Trace:
        trace = Trace()
        trace.record(TraceEvent(0, 0, 1, True, {"energy": 10}))
        trace.record(TraceEvent(1, 1, 2, False, {"energy": 10}))
        trace.record(TraceEvent(2, 0, 2, True, {"energy": 8}))
        trace.record(TraceEvent(3, 2, 1, False, {}))
        return trace

    def test_length_and_indexing(self):
        trace = self._sample()
        assert len(trace) == 4
        assert trace[2].step == 2
        assert [event.step for event in trace] == [0, 1, 2, 3]
        assert trace.events()[0].initiator == 0

    def test_changed_steps(self):
        trace = self._sample()
        assert trace.changed_steps() == [0, 2]
        assert trace.last_change_step() == 2

    def test_last_change_none_for_quiet_trace(self):
        trace = Trace()
        trace.record(TraceEvent(0, 0, 1, False, {}))
        assert trace.last_change_step() is None

    def test_metric_series_skips_missing(self):
        trace = self._sample()
        assert trace.series("energy") == [(0, 10), (1, 10), (2, 8)]
        assert trace.series("missing") == []

    def test_filter(self):
        trace = self._sample()
        involving_agent_2 = trace.filter(lambda event: 2 in (event.initiator, event.responder))
        assert [event.step for event in involving_agent_2] == [1, 2, 3]
