"""Tests for engine selection and the shared engine policies."""

import pytest

from repro.simulation import (
    ENGINES,
    AgentSimulation,
    BatchConfigurationSimulation,
    ConfigurationSimulation,
    ExactMarkovEngine,
    SimulationEngine,
    VectorReplicateSimulation,
    available_engines,
    default_check_interval,
    get_engine,
    stochastic_engines,
)
from repro.core.circles import CirclesProtocol
from repro.simulation.convergence import OutputConsensus


class TestRegistry:
    def test_known_names(self):
        assert available_engines() == ("agent", "batch", "configuration", "exact", "vector")
        assert get_engine("agent") is AgentSimulation
        assert get_engine("configuration") is ConfigurationSimulation
        assert get_engine("batch") is BatchConfigurationSimulation
        assert get_engine("exact") is ExactMarkovEngine
        assert get_engine("vector") is VectorReplicateSimulation

    def test_stochastic_engines_excludes_the_analytical_one(self):
        assert stochastic_engines() == ("agent", "batch", "configuration", "vector")
        assert not ExactMarkovEngine.samples_trajectories
        assert all(ENGINES[name].samples_trajectories for name in stochastic_engines())

    def test_names_match_engine_classes(self):
        for name, engine_cls in ENGINES.items():
            assert engine_cls.engine_name == name
            assert issubclass(engine_cls, SimulationEngine)

    def test_unknown_name_lists_available_engines(self):
        with pytest.raises(KeyError, match="agent, batch, configuration, exact, vector"):
            get_engine("warp-drive")


class TestDefaultCheckInterval:
    def test_one_parallel_time_unit(self):
        assert default_check_interval(50) == 50
        assert default_check_interval(1) == 1
        assert default_check_interval(0) == 1

    @pytest.mark.parametrize("name", ["agent", "configuration", "batch", "vector"])
    def test_every_engine_shares_the_policy(self, name):
        """All engines detect convergence within one parallel-time unit.

        Regression for the old split defaults (the agent engine used to check
        only once per ``n·(n-1)`` scheduler cycle): on an already-converged
        input every engine must stop at the pre-run check, and on a
        nearly-converged input detection must not take a quadratic number of
        interactions.
        """
        engine_cls = get_engine(name)
        protocol = CirclesProtocol(2)
        converged_input = [0] * 20
        simulation = engine_cls.from_colors(protocol, converged_input, seed=1)
        assert simulation.run(10_000, criterion=OutputConsensus())
        assert simulation.steps_taken == 0

    @pytest.mark.parametrize("name", ["agent", "configuration", "batch", "vector"])
    def test_negative_check_interval_rejected(self, name):
        """Regression: a negative interval used to spin the run loop forever."""
        simulation = get_engine(name).from_colors(CirclesProtocol(2), [0, 0, 1], seed=1)
        with pytest.raises(ValueError, match="check_interval"):
            simulation.run(100, criterion=OutputConsensus(), check_interval=-1)

    @pytest.mark.parametrize("name", ["agent", "configuration", "batch", "vector"])
    def test_every_engine_supports_the_observer_hook(self, name):
        observed = 0

        def observe(initiator, responder, result, count):
            nonlocal observed
            observed += count

        simulation = get_engine(name).from_colors(
            CirclesProtocol(3), [0, 1, 2] * 8, seed=2, transition_observer=observe
        )
        simulation.run(300)
        assert observed == simulation.interactions_changed > 0
