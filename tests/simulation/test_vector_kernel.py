"""PairCodeKernel: sequential-equivalence and the invariances it relies on.

The kernel's whole claim is that a vectorized round reproduces the sequential
uniform-random-scheduler process *exactly* — same trajectory, same corrected
pre-states, regardless of how many interactions are drawn per call or how
many replicate rows advance together.  This module tests that claim against
an interaction-at-a-time reference implementation and pins the two numpy
behaviors the construction leans on (fancy-assignment write order and
``Generator.integers`` call-split invariance).
"""

import pytest

np = pytest.importorskip("numpy", reason="the position kernel is numpy-only")

from repro.simulation.vector_kernel import BLOCK_ROWS, PairCodeKernel  # noqa: E402


def mixing_table(d: int) -> np.ndarray:
    """A dense deterministic toy δ-table that keeps all ``d`` states in play."""
    table = np.empty(d * d, dtype=np.int64)
    for a in range(d):
        for b in range(d):
            table[a * d + b] = ((a + b) % d) * d + (a * b + 1) % d
    return table


def make_kernel(d: int, n: int, seeds, table: np.ndarray | None = None) -> PairCodeKernel:
    table = mixing_table(d) if table is None else table
    counts = np.full(d, n // d, dtype=np.int64)
    counts[0] += n - int(counts.sum())
    generators = [np.random.default_rng(seed) for seed in seeds]
    return PairCodeKernel(table, d, n, generators, counts)


def sequential_reference(d: int, n: int, seed: int, length: int, table: np.ndarray):
    """One interaction at a time, straight from the definition."""
    counts = np.full(d, n // d, dtype=np.int64)
    counts[0] += n - int(counts.sum())
    states = np.repeat(np.arange(d, dtype=np.int64), counts)
    gen = np.random.default_rng(seed)
    codes = np.empty(length, dtype=np.int64)
    q = gen.integers(0, n * (n - 1), length, dtype=np.int64)
    for t in range(length):
        i = int(q[t]) // (n - 1)
        r = int(q[t]) - i * (n - 1)
        if r >= i:
            r += 1
        code = states[i] * d + states[r]
        codes[t] = code
        packed = int(table[code])
        states[i] = packed // d
        states[r] = packed % d
    return states, codes


class TestNumpyBehaviorPins:
    """The two numpy contracts the kernel's correctness rests on."""

    def test_fancy_assignment_is_last_write_wins(self):
        out = np.zeros(3, dtype=np.int64)
        out[np.array([0, 2, 0, 0])] = np.array([1, 5, 2, 3])
        assert out.tolist() == [3, 0, 5]

    def test_generator_integers_is_call_split_invariant(self):
        whole = np.random.default_rng(99).integers(0, 10**9, 256, dtype=np.int64)
        gen = np.random.default_rng(99)
        parts = [gen.integers(0, 10**9, size, dtype=np.int64) for size in (1, 100, 155)]
        assert np.array_equal(whole, np.concatenate(parts))


class TestSequentialEquivalence:
    @pytest.mark.parametrize("n,length", [(16, 512), (64, 256), (256, 2048)])
    def test_matches_interaction_at_a_time_reference(self, n, length):
        """Small n + long rounds force dense position chains — the hard case."""
        d = 5
        table = mixing_table(d)
        kernel = make_kernel(d, n, seeds=[7], table=table)
        codes = kernel.advance([0], length)[0]
        ref_states, ref_codes = sequential_reference(d, n, 7, length, table)
        assert np.array_equal(codes, ref_codes)
        assert np.array_equal(
            kernel.row_counts(0), np.bincount(ref_states, minlength=d)
        )

    def test_round_size_invariance(self):
        """The trajectory must not depend on how interactions are batched."""
        d, n, total = 4, 32, 1024
        whole = make_kernel(d, n, seeds=[3])
        codes_whole = whole.advance([0], total)[0]
        split = make_kernel(d, n, seeds=[3])
        pieces = [split.advance([0], size)[0] for size in (1, 255, 256, 512)]
        assert np.array_equal(codes_whole, np.concatenate(pieces))
        assert np.array_equal(whole.row_counts(0), split.row_counts(0))

    def test_row_count_invariance(self):
        """Row ``r`` of an R-row kernel equals a 1-row kernel with its seed."""
        d, n, length = 4, 48, 768
        seeds = [11, 22, 33, 44, 55]
        many = make_kernel(d, n, seeds=seeds)
        codes_many = many.advance(range(len(seeds)), length)
        for row, seed in enumerate(seeds):
            solo = make_kernel(d, n, seeds=[seed])
            assert np.array_equal(solo.advance([0], length)[0], codes_many[row])
            assert np.array_equal(solo.row_counts(0), many.row_counts(row))

    def test_non_contiguous_row_subsets(self):
        """Retired rows stay frozen; active rows advance as if alone."""
        d, n, length = 4, 32, 256
        seeds = [1, 2, 3, 4]
        kernel = make_kernel(d, n, seeds=seeds)
        before_frozen = [kernel.row_counts(row).copy() for row in (1, 3)]
        kernel.advance([0, 2], length)
        assert np.array_equal(kernel.row_counts(1), before_frozen[0])
        assert np.array_equal(kernel.row_counts(3), before_frozen[1])
        for row, seed in ((0, 1), (2, 3)):
            solo = make_kernel(d, n, seeds=[seed])
            solo.advance([0], length)
            assert np.array_equal(solo.row_counts(0), kernel.row_counts(row))

    def test_more_rows_than_block_size(self):
        """Advancing crosses block boundaries without mixing row streams."""
        d, n, length = 3, 16, 128
        seeds = list(range(BLOCK_ROWS + 3))
        kernel = make_kernel(d, n, seeds=seeds)
        codes = kernel.advance(range(len(seeds)), length)
        for row in (0, BLOCK_ROWS - 1, BLOCK_ROWS, BLOCK_ROWS + 2):
            solo = make_kernel(d, n, seeds=[seeds[row]])
            assert np.array_equal(solo.advance([0], length)[0], codes[row])


class TestBookkeeping:
    def test_population_is_conserved(self):
        kernel = make_kernel(4, 40, seeds=[8, 9])
        kernel.advance([0, 1], 500)
        matrix = kernel.counts_matrix([0, 1])
        assert matrix.sum(axis=1).tolist() == [40, 40]

    def test_counts_matrix_matches_row_counts(self):
        kernel = make_kernel(4, 40, seeds=[8, 9, 10])
        kernel.advance([0, 1, 2], 300)
        matrix = kernel.counts_matrix([2, 0])
        assert np.array_equal(matrix[0], kernel.row_counts(2))
        assert np.array_equal(matrix[1], kernel.row_counts(0))

    def test_rejects_wrong_population_size(self):
        with pytest.raises(ValueError, match="expected 10 agents"):
            PairCodeKernel(
                mixing_table(3), 3, 10, [np.random.default_rng(0)], np.array([3, 3, 3])
            )
