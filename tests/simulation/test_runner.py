"""Tests for the high-level run API."""

import pytest

from repro.core.circles import CirclesProtocol
from repro.core.greedy_sets import predicted_stable_brakets
from repro.protocols.exact_majority import ExactMajorityProtocol
from repro.scheduling.round_robin import RoundRobinScheduler
from repro.simulation.convergence import OutputConsensus
from repro.simulation.runner import RunResult, default_max_steps, run_circles, run_protocol
from repro.utils.multiset import Multiset


class TestDefaults:
    def test_default_max_steps_grows_with_population(self):
        assert default_max_steps(10, 3) < default_max_steps(40, 3)
        assert default_max_steps(2, 2) >= 2_000


class TestRunCircles:
    def test_basic_run_reports_everything(self):
        colors = [0, 0, 0, 1, 1, 2]
        outcome = run_circles(colors, seed=5)
        assert isinstance(outcome, RunResult)
        assert outcome.protocol_name == "circles"
        assert outcome.num_agents == 6
        assert outcome.num_colors == 3
        assert outcome.converged and outcome.correct
        assert outcome.majority == 0
        assert outcome.unanimous
        assert outcome.ket_exchanges is not None and outcome.ket_exchanges > 0
        assert outcome.initial_energy == 6 * 3
        assert outcome.final_energy is not None
        assert outcome.final_energy < outcome.initial_energy
        assert Multiset(s.braket for s in outcome.final_states) == predicted_stable_brakets(colors)

    def test_explicit_k_larger_than_colors(self):
        outcome = run_circles([0, 0, 1], num_colors=5, seed=2)
        assert outcome.num_colors == 5
        assert outcome.correct

    def test_explicit_scheduler(self):
        scheduler = RoundRobinScheduler(4)
        outcome = run_circles([0, 0, 0, 1], scheduler=scheduler, seed=0)
        assert outcome.scheduler_name == "round-robin"
        assert outcome.correct

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            run_circles([])

    def test_tie_input_reports_not_correct(self):
        outcome = run_circles([0, 0, 1, 1], seed=3)
        assert outcome.majority is None
        assert not outcome.correct
        # The run still stabilizes (Theorem 3.4 does not need a unique majority).
        assert outcome.converged is False or outcome.converged is True

    def test_record_trace(self):
        outcome = run_circles([0, 0, 1], seed=1, record_trace=True)
        assert outcome.trace is not None
        assert len(outcome.trace) == outcome.steps

    def test_summary_keys(self):
        outcome = run_circles([0, 0, 1], seed=1)
        summary = outcome.summary()
        assert summary["protocol"] == "circles"
        assert summary["correct"] is True
        assert summary["n"] == 3

    def test_budget_too_small_reports_not_converged(self):
        outcome = run_circles([0, 0, 0, 1, 1, 2, 2, 3], max_steps=1, seed=4)
        assert not outcome.converged


class TestRunProtocol:
    def test_runs_exact_majority(self):
        outcome = run_protocol(
            ExactMajorityProtocol(), [0, 0, 0, 1, 1], criterion=OutputConsensus(), seed=9
        )
        assert outcome.protocol_name == "exact-majority"
        assert outcome.correct
        assert outcome.majority == 0

    def test_default_criterion_is_output_consensus(self):
        outcome = run_protocol(CirclesProtocol(2), [0, 0, 1], seed=11)
        assert outcome.converged

    def test_scheduler_mismatch_raises(self):
        with pytest.raises(ValueError):
            run_protocol(
                CirclesProtocol(2), [0, 1, 1], scheduler=RoundRobinScheduler(5), seed=0
            )

    def test_trace_recording(self):
        outcome = run_protocol(CirclesProtocol(2), [0, 1], seed=1, record_trace=True, max_steps=10)
        assert outcome.trace is not None
