"""Tests for the high-level run API."""

import pytest

from repro.core.circles import CirclesProtocol
from repro.core.greedy_sets import predicted_stable_brakets
from repro.core.state import CirclesState
from repro.protocols.exact_majority import ExactMajorityProtocol
from repro.scheduling.round_robin import RoundRobinScheduler
from repro.simulation.convergence import OutputConsensus
from repro.simulation.runner import (
    RunResult,
    default_max_steps,
    ket_exchange_occurred,
    run_circles,
    run_protocol,
)
from repro.utils.multiset import Multiset


class TestDefaults:
    def test_default_max_steps_grows_with_population(self):
        assert default_max_steps(10, 3) < default_max_steps(40, 3)
        assert default_max_steps(2, 2) >= 2_000


class TestRunCircles:
    def test_basic_run_reports_everything(self):
        colors = [0, 0, 0, 1, 1, 2]
        outcome = run_circles(colors, seed=5)
        assert isinstance(outcome, RunResult)
        assert outcome.protocol_name == "circles"
        assert outcome.num_agents == 6
        assert outcome.num_colors == 3
        assert outcome.converged and outcome.correct
        assert outcome.majority == 0
        assert outcome.unanimous
        assert outcome.ket_exchanges is not None and outcome.ket_exchanges > 0
        assert outcome.initial_energy == 6 * 3
        assert outcome.final_energy is not None
        assert outcome.final_energy < outcome.initial_energy
        assert Multiset(s.braket for s in outcome.final_states) == predicted_stable_brakets(colors)

    def test_explicit_k_larger_than_colors(self):
        outcome = run_circles([0, 0, 1], num_colors=5, seed=2)
        assert outcome.num_colors == 5
        assert outcome.correct

    def test_explicit_scheduler(self):
        scheduler = RoundRobinScheduler(4)
        outcome = run_circles([0, 0, 0, 1], scheduler=scheduler, seed=0)
        assert outcome.scheduler_name == "round-robin"
        assert outcome.correct

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="at least two input colors"):
            run_circles([])

    def test_single_agent_input_rejected_with_the_same_message(self):
        """Regression: a one-agent input used to fall through to Population's
        unrelated "needs at least two agents" error."""
        with pytest.raises(ValueError, match="at least two input colors"):
            run_circles([0])

    def test_tie_input_reports_not_correct(self):
        outcome = run_circles([0, 0, 1, 1], seed=3)
        assert outcome.majority is None
        assert not outcome.correct
        # The run still stabilizes (Theorem 3.4 does not need a unique majority).
        assert outcome.converged is False or outcome.converged is True

    def test_record_trace(self):
        outcome = run_circles([0, 0, 1], seed=1, record_trace=True)
        assert outcome.trace is not None
        assert len(outcome.trace) == outcome.steps

    def test_summary_keys(self):
        outcome = run_circles([0, 0, 1], seed=1)
        summary = outcome.summary()
        assert summary["protocol"] == "circles"
        assert summary["correct"] is True
        assert summary["n"] == 3

    def test_results_are_self_describing(self):
        """Engine and seed are recorded on the result and in its summary."""
        for engine in ("agent", "configuration", "batch"):
            outcome = run_circles([0, 0, 0, 1], seed=5, engine=engine)
            assert outcome.engine == engine
            assert outcome.seed == 5
            summary = outcome.summary()
            assert summary["engine"] == engine
            assert summary["seed"] == 5

    def test_unseeded_run_records_no_seed(self):
        outcome = run_circles([0, 0, 1])
        assert outcome.seed is None
        assert outcome.engine == "agent"

    def test_budget_too_small_reports_not_converged(self):
        outcome = run_circles([0, 0, 0, 1, 1, 2, 2, 3], max_steps=1, seed=4)
        assert not outcome.converged


class TestRunProtocol:
    def test_runs_exact_majority(self):
        outcome = run_protocol(
            ExactMajorityProtocol(), [0, 0, 0, 1, 1], criterion=OutputConsensus(), seed=9
        )
        assert outcome.protocol_name == "exact-majority"
        assert outcome.correct
        assert outcome.majority == 0

    def test_default_criterion_is_output_consensus(self):
        outcome = run_protocol(CirclesProtocol(2), [0, 0, 1], seed=11)
        assert outcome.converged

    def test_scheduler_mismatch_raises(self):
        with pytest.raises(ValueError):
            run_protocol(
                CirclesProtocol(2), [0, 1, 1], scheduler=RoundRobinScheduler(5), seed=0
            )

    def test_trace_recording(self):
        outcome = run_protocol(CirclesProtocol(2), [0, 1], seed=1, record_trace=True, max_steps=10)
        assert outcome.trace is not None

    def test_empty_and_single_agent_inputs_rejected(self):
        with pytest.raises(ValueError, match="at least two input colors"):
            run_protocol(CirclesProtocol(2), [])
        with pytest.raises(ValueError, match="at least two input colors"):
            run_protocol(CirclesProtocol(2), [1])


class TestKetExchangeCounting:
    def _state(self, bra, ket, out=0):
        return CirclesState(bra, ket, out)

    def test_no_exchange(self):
        before = (self._state(0, 1), self._state(1, 0))
        after = (self._state(0, 1, 1), self._state(1, 0, 1))  # output-only change
        assert not ket_exchange_occurred(before, after)

    def test_both_sides_change_counts_once(self):
        before = (self._state(0, 1), self._state(1, 0))
        after = (self._state(0, 0), self._state(1, 1))
        assert ket_exchange_occurred(before, after)

    def test_responder_side_only_change_is_counted(self):
        """Regression: the old initiator-only check silently dropped these."""
        before = (self._state(0, 1), self._state(1, 0))
        after = (self._state(0, 1), self._state(1, 1))
        assert ket_exchange_occurred(before, after)

    def test_initiator_side_only_change_is_counted(self):
        before = (self._state(0, 1), self._state(1, 0))
        after = (self._state(0, 0), self._state(1, 0))
        assert ket_exchange_occurred(before, after)


class TestEngineSelection:
    COLORS = [0] * 10 + [1] * 6 + [2] * 4

    @pytest.mark.parametrize("engine", ["agent", "configuration", "batch"])
    def test_run_circles_converges_on_every_engine(self, engine):
        outcome = run_circles(self.COLORS, seed=21, engine=engine)
        assert outcome.converged and outcome.correct
        assert outcome.ket_exchanges is not None and outcome.ket_exchanges > 0
        assert outcome.final_energy is not None
        assert outcome.final_energy < outcome.initial_energy
        assert Multiset(s.braket for s in outcome.final_states) == predicted_stable_brakets(
            self.COLORS
        )

    @pytest.mark.parametrize("engine", ["configuration", "batch"])
    def test_configuration_engines_report_the_uniform_scheduler(self, engine):
        outcome = run_circles([0, 0, 0, 1], seed=2, engine=engine)
        assert outcome.scheduler_name == "uniform-random"

    @pytest.mark.parametrize("engine", ["configuration", "batch"])
    def test_run_protocol_supports_configuration_engines(self, engine):
        outcome = run_protocol(ExactMajorityProtocol(), [0, 0, 0, 1, 1], seed=9, engine=engine)
        assert outcome.correct
        assert outcome.num_agents == 5
        assert len(outcome.outputs) == 5

    def test_unknown_engine_rejected(self):
        with pytest.raises(KeyError, match="unknown engine"):
            run_circles([0, 0, 1], engine="warp-drive")

    def test_scheduler_requires_agent_engine(self):
        with pytest.raises(ValueError, match="custom scheduler"):
            run_circles([0, 0, 1], scheduler=RoundRobinScheduler(3), engine="batch")

    def test_trace_requires_agent_engine(self):
        with pytest.raises(ValueError, match="trace"):
            run_protocol(CirclesProtocol(2), [0, 1], record_trace=True, engine="configuration")
