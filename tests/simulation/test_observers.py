"""Tests for the unified observer pipeline (repro.simulation.observers)."""

import pytest

from repro.core.circles import CirclesProtocol
from repro.core.potential import configuration_energy, weight_histogram
from repro.simulation import (
    AgentSimulation,
    BatchConfigurationSimulation,
    ConfigurationSimulation,
    EnergyObserver,
    KetExchangeObserver,
    Observer,
    OutputConsensus,
    PotentialObserver,
    Trace,
    TraceObserver,
    available_observers,
    build_observer,
    register_observer,
    run_circles,
)
from repro.simulation.observers import OBSERVERS

ENGINE_CLASSES = (AgentSimulation, ConfigurationSimulation, BatchConfigurationSimulation)

COLORS = [0] * 9 + [1] * 5 + [2] * 2


def _build(engine_cls, seed=3):
    return engine_cls.from_colors(CirclesProtocol(3), COLORS, seed=seed)


class RecordingObserver(Observer):
    """Collects every hook invocation for assertions."""

    name = "recording"

    def __init__(self):
        self.started = 0
        self.deltas = []
        self.checks = 0
        self.finishes = []

    def on_start(self, engine):
        self.started += 1

    def on_delta(self, delta):
        self.deltas.append(delta)

    def on_check(self, engine):
        self.checks += 1

    def on_finish(self, engine, converged):
        self.finishes.append(converged)


class TestHooks:
    @pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
    def test_delta_counts_sum_to_interactions_changed(self, engine_cls):
        simulation = _build(engine_cls)
        recording = simulation.add_observer(RecordingObserver())
        simulation.run(4_000)
        assert recording.started == 1
        assert sum(delta.count for delta in recording.deltas) == simulation.interactions_changed
        assert all(delta.result.changed for delta in recording.deltas)

    @pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
    def test_check_and_finish_fire_in_run(self, engine_cls):
        simulation = _build(engine_cls)
        recording = simulation.add_observer(RecordingObserver())
        converged = simulation.run(50_000, criterion=OutputConsensus())
        assert recording.finishes == [converged]
        assert recording.checks >= 1

    def test_finish_fires_for_budget_only_runs(self):
        simulation = _build(ConfigurationSimulation)
        recording = simulation.add_observer(RecordingObserver())
        simulation.run(100)
        assert recording.finishes == [False]
        assert recording.checks == 0

    def test_agent_engine_indices_and_unchanged_deltas(self):
        simulation = _build(AgentSimulation)

        class Unfiltered(RecordingObserver):
            wants_unchanged = True

        everything = simulation.add_observer(Unfiltered())
        changed_only = simulation.add_observer(RecordingObserver())
        simulation.run(500)
        assert len(everything.deltas) == 500  # one delta per interaction
        assert all(delta.initiator_index is not None for delta in everything.deltas)
        assert len(changed_only.deltas) == sum(
            1 for delta in everything.deltas if delta.result.changed
        )

    def test_anonymous_engines_reject_index_observers(self):
        simulation = _build(BatchConfigurationSimulation)
        with pytest.raises(ValueError, match="does not track individual agents"):
            simulation.add_observer(TraceObserver())

    def test_legacy_transition_observer_still_works(self):
        calls = []

        def legacy(initiator, responder, result, count):
            calls.append(count)

        simulation = ConfigurationSimulation.from_colors(
            CirclesProtocol(3), COLORS, seed=3, transition_observer=legacy
        )
        simulation.run(2_000)
        assert sum(calls) == simulation.interactions_changed


class TestTraceObserver:
    def test_trace_param_records_identically_to_pre_pipeline_contract(self):
        trace = Trace()
        simulation = AgentSimulation.from_colors(
            CirclesProtocol(3), COLORS, seed=5, trace=trace,
            metrics={"agents": len},
        )
        simulation.run(200)
        assert len(trace) == 200
        assert [event.step for event in trace] == list(range(200))
        assert all(event.metrics["agents"] == len(COLORS) for event in trace)
        changed = [event for event in trace if event.changed]
        assert len(changed) == simulation.interactions_changed

    def test_summary_is_json_native(self):
        trace = Trace()
        simulation = AgentSimulation.from_colors(CirclesProtocol(3), COLORS, seed=5, trace=trace)
        observer = next(obs for obs in simulation.observers if obs.name == "trace")
        simulation.run(100)
        summary = observer.summary()
        assert summary["events"] == 100
        assert summary["changed_events"] == simulation.interactions_changed


class TestMetricObservers:
    @pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
    def test_energy_matches_recomputation(self, engine_cls):
        simulation = _build(engine_cls)
        energy = simulation.add_observer(EnergyObserver())
        simulation.run(6_000)
        assert energy.energy == configuration_energy(simulation.states(), 3)
        assert energy.summary()["monotone_nonincreasing"]

    @pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
    def test_potential_histogram_matches_recomputation(self, engine_cls):
        simulation = _build(engine_cls)
        potential = simulation.add_observer(PotentialObserver())
        simulation.run(6_000)
        assert potential.histogram == weight_histogram(simulation.states(), 3)
        assert potential.strictly_decreasing

    @pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
    def test_ket_exchange_counts_are_bounded_by_changes(self, engine_cls):
        simulation = _build(engine_cls)
        exchanges = simulation.add_observer(KetExchangeObserver())
        simulation.run(6_000)
        assert 0 < exchanges.exchanges <= simulation.interactions_changed
        assert exchanges.summary() == {"ket_exchanges": exchanges.exchanges}

    def test_energy_check_mode_samples_at_boundaries(self):
        simulation = _build(ConfigurationSimulation)
        energy = simulation.add_observer(EnergyObserver(record="check"))
        simulation.run(3_200, criterion=OutputConsensus(), check_interval=400)
        steps = [step for step, _ in energy.samples]
        assert steps[0] == 0
        assert all(step % 400 == 0 for step in steps)

    def test_energy_rejects_unknown_record_mode(self):
        with pytest.raises(ValueError, match="record"):
            EnergyObserver(record="sometimes")


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"trace", "energy", "potential", "ket-exchanges"} <= set(available_observers())

    def test_build_observer_with_params(self):
        observer = build_observer("energy", record="check")
        assert isinstance(observer, EnergyObserver)
        assert observer.record == "check"

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="unknown observer 'nope'"):
            build_observer("nope")

    def test_register_observer_duplicate_and_overwrite(self):
        register_observer("recording-test", RecordingObserver)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_observer("recording-test", RecordingObserver)
            register_observer("recording-test", RecordingObserver, overwrite=True)
        finally:
            OBSERVERS.pop("recording-test", None)


class TestRunApi:
    def test_run_circles_reports_observer_summaries(self):
        result = run_circles(COLORS, seed=2, engine="batch", observers=("energy",))
        summary = result.observer_summaries["energy"]
        assert summary["initial_energy"] == len(COLORS) * 3
        assert summary["final_energy"] <= summary["initial_energy"]
        assert result.ket_exchanges is not None

    def test_run_circles_accepts_observer_instances(self):
        energy = EnergyObserver()
        result = run_circles(COLORS, seed=2, engine="configuration", observers=[energy])
        assert energy.energy == configuration_energy(list(result.final_states), 3)


class TestEnergySampleSteps:
    def test_agent_series_is_single_valued_over_the_full_budget(self):
        """Regression: samples used to pair post-delta energy with the
        pre-delta step, duplicating x=0 and never reaching the budget."""
        from repro.chemistry.energy import energy_trajectory

        budget = 50
        trajectory = energy_trajectory(COLORS, num_colors=3, max_steps=budget, seed=3)
        assert trajectory.steps == tuple(range(budget + 1))
        assert len(trajectory.series()) == budget + 1

    def test_count_engine_sample_steps_strictly_follow_the_run(self):
        simulation = _build(BatchConfigurationSimulation)
        energy = simulation.add_observer(EnergyObserver())
        simulation.run(2_000)
        steps = [step for step, _ in energy.samples]
        assert steps[0] == 0 and min(steps[1:]) >= 1
        assert steps == sorted(steps)
        assert steps[-1] <= simulation.steps_taken
