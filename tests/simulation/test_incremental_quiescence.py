"""Incremental quiescence detection: ActivePairTracker vs the O(d²) rescan.

The tracker must agree with the from-scratch :class:`SilentConfiguration`
rescan at *every* point of *every* execution — the fuzz test sweeps the whole
protocol registry to pin that, so future protocols are covered by
registration alone.  Also home to the ``check_interval`` validation
regression test (0 used to be silently replaced by the default).
"""

import pytest

import repro  # noqa: F401  (populates the protocol registry)
from repro.compile import compile_protocol
from repro.core.circles import CirclesProtocol
from repro.protocols.registry import DEFAULT_REGISTRY, get_protocol
from repro.simulation import (
    ActivePairTracker,
    AgentSimulation,
    BatchConfigurationSimulation,
    ConfigurationSimulation,
    OutputConsensus,
    SilentConfiguration,
)
from repro.workloads.distributions import planted_majority

ENGINE_CLASSES = (AgentSimulation, ConfigurationSimulation, BatchConfigurationSimulation)


class TestActivePairTracker:
    def test_initial_classification_matches_rescan(self):
        protocol = CirclesProtocol(3)
        compiled = compile_protocol(protocol)
        counts = [0] * compiled.num_states
        counts[compiled.initial_index(0)] = 5
        counts[compiled.initial_index(1)] = 3
        tracker = ActivePairTracker(compiled, counts)
        assert not tracker.is_silent()  # two diagonal colors can exchange

    def test_single_present_state_without_self_transition_is_silent(self):
        protocol = CirclesProtocol(3)
        compiled = compile_protocol(protocol)
        counts = [0] * compiled.num_states
        counts[compiled.initial_index(0)] = 10  # ⟨0|0⟩ meeting itself: no-op
        tracker = ActivePairTracker(compiled, counts)
        assert tracker.is_silent()

    def test_multiplicity_transitions_toggle_self_pairs(self):
        # Two agents of a self-active state: silent iff fewer than two copies.
        protocol = get_protocol("exact-majority", 2)
        compiled = compile_protocol(protocol)
        plus, minus = compiled.initial_index(0), compiled.initial_index(1)
        counts = [0] * compiled.num_states
        counts[plus] = 1
        counts[minus] = 1
        tracker = ActivePairTracker(compiled, counts)
        assert not tracker.is_silent()  # +/- annihilate
        counts[minus] = 0
        tracker.update(minus)
        assert tracker.is_silent()
        counts[plus] = 2
        tracker.update(plus)
        assert tracker.is_silent()  # two + agents never change each other


class TestIncrementalMatchesRescanOverTheRegistry:
    """Fuzz: incremental and rescan verdicts agree along seeded executions."""

    @pytest.mark.parametrize("name", DEFAULT_REGISTRY.names())
    @pytest.mark.parametrize("engine_cls", (ConfigurationSimulation, BatchConfigurationSimulation))
    def test_agreement_along_a_run(self, name, engine_cls, make_registry_protocol):
        protocol = make_registry_protocol(name)
        colors = planted_majority(24, protocol.num_colors, seed=11)
        simulation = engine_cls.from_colors(protocol, colors, seed=7)
        if simulation.compiled_protocol is None:
            pytest.skip(f"{name} exceeds the compile cap at k={protocol.num_colors}")
        incremental = SilentConfiguration()
        rescan = SilentConfiguration(incremental=False)
        for _ in range(60):
            assert simulation._converged(incremental) == simulation._converged(rescan)
            simulation.run(25)
        assert simulation._converged(incremental) == simulation._converged(rescan)

    def test_detection_of_reached_silence(self):
        # A skewed input converges to silence; both strategies stop the run
        # at the same interaction on the same seeded chain.
        protocol = get_protocol("exact-majority", 2)
        colors = [0] * 30 + [1] * 10
        outcomes = []
        for criterion in (SilentConfiguration(), SilentConfiguration(incremental=False)):
            simulation = ConfigurationSimulation.from_colors(protocol, colors, seed=5)
            converged = simulation.run(100_000, criterion=criterion, check_interval=40)
            outcomes.append((converged, simulation.steps_taken))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0], "the skewed exact-majority run should go silent"

    def test_uncompiled_engines_fall_back_to_the_rescan(self):
        protocol = CirclesProtocol(3)
        colors = [0] * 6 + [1] * 3
        simulation = ConfigurationSimulation.from_colors(
            protocol, colors, seed=5, compiled=False
        )
        assert simulation.compiled_protocol is None
        converged = simulation.run(50_000, criterion=SilentConfiguration())
        assert converged
        assert SilentConfiguration().is_converged(protocol, simulation.states())


class TestCheckIntervalValidation:
    """Regression: ``check_interval=0`` used to silently become the default."""

    @pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
    def test_zero_check_interval_is_rejected(self, engine_cls):
        simulation = engine_cls.from_colors(CirclesProtocol(3), [0, 1, 2] * 4, seed=1)
        with pytest.raises(ValueError, match="check_interval must be a positive"):
            simulation.run(100, criterion=OutputConsensus(), check_interval=0)

    def test_negative_check_interval_is_rejected(self):
        simulation = ConfigurationSimulation.from_colors(CirclesProtocol(3), [0, 1, 2] * 4)
        with pytest.raises(ValueError, match="check_interval"):
            simulation.run(100, criterion=OutputConsensus(), check_interval=-5)

    def test_zero_is_rejected_even_without_criterion(self):
        simulation = ConfigurationSimulation.from_colors(CirclesProtocol(3), [0, 1, 2] * 4)
        with pytest.raises(ValueError, match="check_interval"):
            simulation.run(100, check_interval=0)

    def test_interval_of_one_checks_every_interaction(self):
        simulation = ConfigurationSimulation.from_colors(CirclesProtocol(2), [0] * 5 + [1] * 3, seed=2)
        converged = simulation.run(20_000, criterion=OutputConsensus(), check_interval=1)
        assert converged
