"""Tests for the batched configuration-level simulation engine.

The engine's claim is *exactness*: it samples the same Markov chain over
configurations as :class:`ConfigurationSimulation`, just in bursts.  Besides
the usual unit checks, this module therefore carries a distributional
agreement test (two-sample chi-squared on output-count histograms across
hundreds of seeded runs) and invariant checks on the burst machinery
(population conservation, pool/configuration consistency, exact budget
accounting across collision corrections).
"""

import pytest

from repro.core.circles import CirclesProtocol
from repro.core.greedy_sets import predicted_stable_brakets
from repro.core.invariants import braket_invariant_holds
from repro.simulation.batch_engine import (
    SEQUENTIAL_FALLBACK_THRESHOLD,
    BatchConfigurationSimulation,
)
from repro.simulation.config_engine import ConfigurationSimulation
from repro.simulation.convergence import StableCircles
from repro.utils.multiset import Multiset


class TestConstruction:
    def test_from_colors(self):
        simulation = BatchConfigurationSimulation.from_colors(
            CirclesProtocol(3), [0, 0, 1], seed=1
        )
        assert simulation.num_agents == 3
        assert len(simulation.configuration()) == 3

    def test_requires_two_agents(self):
        protocol = CirclesProtocol(2)
        with pytest.raises(ValueError):
            BatchConfigurationSimulation(protocol, [protocol.initial_state(0)])

    def test_engine_name(self):
        assert BatchConfigurationSimulation.engine_name == "batch"


class TestBurstMachinery:
    def test_exact_budget_accounting(self):
        """run(T) executes exactly T interactions, collision corrections included."""
        colors = [0] * 30 + [1] * 20 + [2] * 10
        simulation = BatchConfigurationSimulation.from_colors(
            CirclesProtocol(3), colors, seed=3
        )
        for budget in (1, 7, 1_000, 4_321):
            before = simulation.steps_taken
            simulation.run(budget)
            assert simulation.steps_taken == before + budget

    @pytest.mark.parametrize("num_agents", [16, 17, 33, 90])
    def test_population_and_pool_stay_consistent(self, num_agents):
        """The agent pool and the count table describe the same multiset."""
        colors = [index % 3 for index in range(num_agents)]
        simulation = BatchConfigurationSimulation.from_colors(
            CirclesProtocol(3), colors, seed=num_agents
        )
        for _ in range(50):
            simulation.run_burst()
            assert Multiset(simulation.states()) == simulation.configuration()
            assert len(simulation.configuration()) == num_agents

    def test_braket_invariant_preserved(self):
        simulation = BatchConfigurationSimulation.from_colors(
            CirclesProtocol(4), [0, 0, 1, 2, 3, 3] * 5, seed=5
        )
        for _ in range(40):
            simulation.run_burst()
            assert braket_invariant_holds(simulation.states())

    def test_small_populations_use_sequential_fallback(self):
        colors = [0, 0, 1] * 4  # n = 12 < threshold
        assert len(colors) < SEQUENTIAL_FALLBACK_THRESHOLD
        simulation = BatchConfigurationSimulation.from_colors(
            CirclesProtocol(2), colors, seed=7
        )
        simulation.run(500)
        assert simulation.steps_taken == 500
        assert len(simulation.configuration()) == len(colors)

    def test_same_seed_same_trajectory(self):
        colors = [0] * 20 + [1] * 12
        runs = []
        for _ in range(2):
            simulation = BatchConfigurationSimulation.from_colors(
                CirclesProtocol(2), colors, seed=11
            )
            simulation.run(2_000)
            runs.append(simulation.configuration())
        assert runs[0] == runs[1]

    def test_observer_counts_match_interactions_changed(self):
        observed = 0

        def observe(initiator, responder, result, count):
            nonlocal observed
            observed += count

        colors = [0] * 25 + [1] * 15 + [2] * 10
        simulation = BatchConfigurationSimulation.from_colors(
            CirclesProtocol(3), colors, seed=13, transition_observer=observe
        )
        simulation.run(5_000)
        assert observed == simulation.interactions_changed > 0


class TestConvergence:
    def test_reaches_predicted_stable_configuration(self):
        colors = [0] * 8 + [1] * 6 + [2] * 4  # n = 18: the burst path is active
        simulation = BatchConfigurationSimulation.from_colors(
            CirclesProtocol(3), colors, seed=17
        )
        converged = simulation.run(500_000, criterion=StableCircles())
        assert converged
        final_brakets = Multiset(state.braket for state in simulation.states())
        assert final_brakets == predicted_stable_brakets(colors)
        assert simulation.unanimous_output() == 0

    def test_negative_budget_rejected(self):
        simulation = BatchConfigurationSimulation.from_colors(
            CirclesProtocol(2), [0, 1], seed=1
        )
        with pytest.raises(ValueError):
            simulation.run(-5)


class TestDistributionalAgreement:
    """The batched and the sequential engine sample the same chain."""

    TRIALS = 300
    HORIZON = 60
    COLORS = [0] * 12 + [1] * 8  # n = 20: several bursts per run

    def _majority_count_histogram(self, engine_cls, seed_base: int) -> dict[int, int]:
        histogram: dict[int, int] = {}
        protocol = CirclesProtocol(2)
        for trial in range(self.TRIALS):
            simulation = engine_cls.from_colors(
                protocol, self.COLORS, seed=seed_base + trial
            )
            simulation.run(self.HORIZON)
            count = simulation.output_counts().get(0, 0)
            histogram[count] = histogram.get(count, 0) + 1
        return histogram

    def test_output_count_distributions_agree(self, two_sample_chi_squared):
        batched = self._majority_count_histogram(BatchConfigurationSimulation, 40_000)
        sequential = self._majority_count_histogram(ConfigurationSimulation, 80_000)
        statistic, critical = two_sample_chi_squared(batched, sequential)
        assert statistic < critical, (
            f"chi-squared {statistic:.1f} exceeds the 99.9% critical value {critical:.1f}: "
            f"batched {batched} vs sequential {sequential}"
        )
