"""Exactness of the compiled batch-engine paths.

The batch engine picks among three representations (legacy hashable-state
pool, compiled pool of integer codes, compiled numpy count vectors above
``NUMPY_BURST_THRESHOLD``); all must sample the *same* Markov chain.  The
small-``n`` paths are covered by ``test_batch_engine.py`` and the
registry-wide conformance matrix; this module pins the vectorized
counts-vector path, which only activates at ``n ≥ 4096``.
"""

import pytest

from repro.core.circles import CirclesProtocol
from repro.core.invariants import braket_invariant_holds
from repro.simulation.batch_engine import (
    NUMPY_BURST_THRESHOLD,
    BatchConfigurationSimulation,
)
from repro.utils.multiset import Multiset
from repro.workloads.distributions import planted_majority

pytest.importorskip("numpy", reason="the counts-vector burst path needs numpy")

#: Smallest population on the vectorized path.
N = NUMPY_BURST_THRESHOLD
K = 3


def _colors():
    return planted_majority(N, K, seed=23)


class TestCountsVectorPath:
    def test_path_is_active_at_the_threshold(self):
        simulation = BatchConfigurationSimulation.from_colors(
            CirclesProtocol(K), _colors(), seed=1
        )
        assert simulation.compiled_protocol is not None
        # No agent pool is materialized on the counts-vector path.
        assert simulation._pool is None

    def test_exact_budget_accounting_across_bursts(self):
        simulation = BatchConfigurationSimulation.from_colors(
            CirclesProtocol(K), _colors(), seed=3
        )
        for budget in (1, 7, 1_000, 12_345):
            before = simulation.steps_taken
            simulation.run(budget)
            assert simulation.steps_taken == before + budget

    def test_population_conserved_and_views_consistent(self):
        simulation = BatchConfigurationSimulation.from_colors(
            CirclesProtocol(K), _colors(), seed=5
        )
        for _ in range(20):
            simulation.run_burst()
            configuration = simulation.configuration()
            assert len(configuration) == N
            assert Multiset(simulation.states()) == configuration
        assert sum(simulation.output_counts().values()) == N

    def test_braket_invariant_preserved(self):
        simulation = BatchConfigurationSimulation.from_colors(
            CirclesProtocol(K), _colors(), seed=7
        )
        for _ in range(10):
            simulation.run_burst()
        assert braket_invariant_holds(simulation.states())

    def test_same_seed_same_trajectory(self):
        runs = []
        for _ in range(2):
            simulation = BatchConfigurationSimulation.from_colors(
                CirclesProtocol(K), _colors(), seed=11
            )
            simulation.run(5_000)
            runs.append(simulation.configuration())
        assert runs[0] == runs[1]

    def test_observer_counts_match_interactions_changed(self):
        observed = 0

        def observe(initiator, responder, result, count):
            nonlocal observed
            observed += count
            assert result.changed

        simulation = BatchConfigurationSimulation.from_colors(
            CirclesProtocol(K), _colors(), seed=13, transition_observer=observe
        )
        simulation.run(8_000)
        assert observed == simulation.interactions_changed > 0


class TestDistributionalAgreementWithThePoolPath:
    """The vectorized path samples the same chain as the legacy pool path."""

    TRIALS = 120
    HORIZON = 250

    def _histogram(self, compiled, seed_base):
        protocol = CirclesProtocol(K)
        colors = _colors()
        histogram = {}
        for trial in range(self.TRIALS):
            simulation = BatchConfigurationSimulation.from_colors(
                protocol, colors, seed=seed_base + trial, compiled=compiled
            )
            simulation.run(self.HORIZON)
            count = simulation.output_counts().get(0, 0)
            histogram[count] = histogram.get(count, 0) + 1
        return histogram

    def test_output_count_distributions_agree(self, two_sample_chi_squared):
        vectorized = self._histogram(True, 60_000)
        pool = self._histogram(False, 75_000)
        statistic, critical = two_sample_chi_squared(vectorized, pool)
        assert statistic < critical, (
            f"chi-squared {statistic:.1f} exceeds the 99.9% critical value "
            f"{critical:.1f}: vectorized {vectorized} vs pool {pool}"
        )
