"""Tests for populations and configurations."""

import pytest

from repro.core.circles import CirclesProtocol
from repro.core.state import CirclesState
from repro.simulation.population import Population, initial_states


class TestInitialStates:
    def test_maps_through_input_function(self):
        protocol = CirclesProtocol(3)
        states = initial_states(protocol, [0, 2, 2])
        assert states == [CirclesState(0, 0, 0), CirclesState(2, 2, 2), CirclesState(2, 2, 2)]

    def test_requires_two_agents(self):
        protocol = CirclesProtocol(3)
        with pytest.raises(ValueError):
            initial_states(protocol, [0])


class TestPopulation:
    def test_from_colors(self):
        protocol = CirclesProtocol(3)
        population = Population.from_colors(protocol, [0, 1, 1])
        assert len(population) == 3
        assert population[1] == CirclesState(1, 1, 1)

    def test_requires_two_agents(self):
        with pytest.raises(ValueError):
            Population([CirclesState(0, 0, 0)])

    def test_setitem_and_states_copy(self):
        protocol = CirclesProtocol(3)
        population = Population.from_colors(protocol, [0, 1])
        population[0] = CirclesState(0, 1, 0)
        snapshot = population.states()
        snapshot[0] = CirclesState(2, 2, 2)
        assert population[0] == CirclesState(0, 1, 0)

    def test_configuration_is_a_multiset(self):
        protocol = CirclesProtocol(3)
        population = Population.from_colors(protocol, [1, 1, 0])
        configuration = population.configuration()
        assert configuration.count(CirclesState(1, 1, 1)) == 2
        assert len(configuration) == 3

    def test_outputs_and_counts(self):
        protocol = CirclesProtocol(3)
        population = Population.from_colors(protocol, [0, 1, 1])
        assert population.outputs(protocol) == [0, 1, 1]
        assert population.output_counts(protocol) == {0: 1, 1: 2}

    def test_iteration(self):
        protocol = CirclesProtocol(2)
        population = Population.from_colors(protocol, [0, 1])
        assert list(population) == population.states()
