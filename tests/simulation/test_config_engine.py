"""Tests for the configuration-level (multiset) simulation engine."""

import pytest

from repro.core.circles import CirclesProtocol
from repro.core.greedy_sets import predicted_stable_brakets
from repro.core.invariants import braket_invariant_holds
from repro.simulation.config_engine import ConfigurationSimulation
from repro.simulation.convergence import StableCircles
from repro.utils.multiset import Multiset


class TestConstruction:
    def test_from_colors(self):
        simulation = ConfigurationSimulation.from_colors(CirclesProtocol(3), [0, 0, 1], seed=1)
        assert simulation.num_agents == 3
        assert len(simulation.configuration()) == 3

    def test_requires_two_agents(self):
        protocol = CirclesProtocol(2)
        with pytest.raises(ValueError):
            ConfigurationSimulation(protocol, [protocol.initial_state(0)])


class TestDynamics:
    def test_population_size_is_preserved(self):
        simulation = ConfigurationSimulation.from_colors(
            CirclesProtocol(4), [0, 1, 2, 3, 0, 1], seed=3
        )
        for _ in range(200):
            simulation.step()
        assert len(simulation.configuration()) == 6

    def test_braket_invariant_preserved(self):
        simulation = ConfigurationSimulation.from_colors(
            CirclesProtocol(4), [0, 0, 1, 2, 3, 3], seed=5
        )
        for _ in range(300):
            simulation.step()
            assert braket_invariant_holds(list(simulation.configuration().elements()))

    def test_counters(self):
        simulation = ConfigurationSimulation.from_colors(CirclesProtocol(3), [0, 1, 2], seed=7)
        simulation.run(50)
        assert simulation.steps_taken == 50
        assert simulation.interactions_changed <= 50


class TestConvergence:
    def test_reaches_predicted_stable_configuration(self):
        colors = [0, 0, 0, 1, 1, 2]
        simulation = ConfigurationSimulation.from_colors(CirclesProtocol(3), colors, seed=11)
        converged = simulation.run(50_000, criterion=StableCircles(), check_interval=20)
        assert converged
        final_brakets = Multiset(
            state.braket for state in simulation.configuration().elements()
        )
        assert final_brakets == predicted_stable_brakets(colors)
        assert simulation.unanimous_output() == 0

    def test_output_counts(self):
        simulation = ConfigurationSimulation.from_colors(CirclesProtocol(3), [0, 0, 1], seed=13)
        assert simulation.output_counts() == {0: 2, 1: 1}
        assert simulation.unanimous_output() is None

    def test_negative_budget_rejected(self):
        simulation = ConfigurationSimulation.from_colors(CirclesProtocol(2), [0, 1], seed=1)
        with pytest.raises(ValueError):
            simulation.run(-5)

    def test_scales_to_large_populations(self):
        """10^4 agents: the per-step cost depends on distinct states, not on n."""
        colors = [0] * 5000 + [1] * 3000 + [2] * 2000
        simulation = ConfigurationSimulation.from_colors(CirclesProtocol(3), colors, seed=17)
        simulation.run(2_000)
        assert len(simulation.configuration()) == 10_000
