"""Unit tests for SCCs, absorption and hitting analyses, and the solvers."""

import math
from fractions import Fraction

import pytest

from repro.core.circles import CirclesProtocol
from repro.exact import (
    ConfigurationChain,
    SolveTooLarge,
    analyze_absorption,
    closed_classes,
    hitting_analysis,
    strongly_connected_components,
)
from repro.exact.solve import gaussian_solve, solve_transient_systems
from repro.protocols.approximate_majority import ApproximateMajorityProtocol
from repro.simulation.convergence import OutputConsensus, StableCircles


class TestGraphAlgorithms:
    def test_sccs_of_a_simple_cycle_plus_tail(self):
        # 0 -> 1 -> 2 -> 1 (cycle {1,2} reached from 0)
        rows = [{1: 1.0}, {2: 1.0}, {1: 1.0}]
        components = strongly_connected_components(rows)
        assert sorted(map(tuple, components)) == [(0,), (1, 2)]
        assert closed_classes(rows) == [[1, 2]]

    def test_two_absorbing_states(self):
        rows = [{1: 0.5, 2: 0.5}, {1: 1.0}, {2: 1.0}]
        assert closed_classes(rows) == [[1], [2]]

    def test_self_loop_on_transient_state_is_not_closed(self):
        rows = [{0: 0.5, 1: 0.5}, {1: 1.0}]
        assert closed_classes(rows) == [[1]]

    def test_deep_chain_does_not_recurse(self):
        # A 5000-node path would blow the recursion limit in a recursive Tarjan.
        size = 5000
        rows = [{i + 1: 1.0} for i in range(size - 1)] + [{size - 1: 1.0}]
        components = strongly_connected_components(rows)
        assert len(components) == size


class TestSolvers:
    def test_gaussian_solve_matches_hand_solution(self):
        solutions = gaussian_solve(
            [[Fraction(2), Fraction(1)], [Fraction(1), Fraction(3)]],
            [[Fraction(5), Fraction(10)]],
        )
        assert solutions == [[Fraction(1), Fraction(3)]]

    def test_gaussian_solve_pivots(self):
        # Leading zero forces a row swap.
        solutions = gaussian_solve([[0.0, 1.0], [1.0, 0.0]], [[2.0, 3.0]])
        assert solutions[0] == [3.0, 2.0]

    def test_pure_python_and_numpy_backends_agree(self):
        pytest.importorskip("numpy")
        rows = [{0: 0.25, 1: 0.5, 2: 0.25}, {1: 0.1, 2: 0.9}, {2: 1.0}]
        transient = [0, 1]
        rhs = [[1.0, 1.0]]
        via_numpy = solve_transient_systems(rows, transient, rhs, exact=False)
        via_python = solve_transient_systems(
            rows,
            transient,
            [[Fraction(1), Fraction(1)]],
            exact=True,
        )
        for a, b in zip(via_numpy[0], via_python[0]):
            assert math.isclose(a, float(b), rel_tol=1e-12)

    def test_solve_cap_enforced(self):
        rows = [{0: 1.0} for _ in range(5)]
        with pytest.raises(SolveTooLarge):
            solve_transient_systems(rows, [0, 1, 2], [[1.0] * 3], exact=False, max_transient=2)

    def test_empty_system(self):
        assert solve_transient_systems([], [], [[], []], exact=False) == [[], []]


class TestAbsorption:
    def test_gambler_ruin_textbook_values(self):
        """Approximate majority at n=2 is a 2-step gambler's-ruin sanity case;
        the generic small chain below pins the solver against hand math."""
        # Hand-built chain: 0 -> {0 w.p. 1/2, absorbing 1 w.p. 1/4, absorbing 2 w.p. 1/4}
        from repro.exact.chain import ConfigurationChain  # noqa: F401  (type only)

        rows = [
            {0: Fraction(1, 2), 1: Fraction(1, 4), 2: Fraction(1, 4)},
            {1: Fraction(1)},
            {2: Fraction(1)},
        ]
        classes = closed_classes(rows)
        assert classes == [[1], [2]]
        solutions = solve_transient_systems(
            rows, [0], [[Fraction(1)], [Fraction(1, 4)], [Fraction(1, 4)]], exact=True
        )
        assert solutions[0][0] == 2  # E[steps] = 1 / (1/2)
        assert solutions[1][0] == Fraction(1, 2)
        assert solutions[2][0] == Fraction(1, 2)

    def test_circles_absorbs_almost_surely_into_one_correct_class(self):
        chain = ConfigurationChain.from_colors(
            CirclesProtocol(2), (0, 0, 0, 1, 1), arithmetic="exact"
        )
        analysis = analyze_absorption(chain)
        assert analysis.num_classes == 1
        assert analysis.class_probabilities == [Fraction(1)]
        assert analysis.expected_interactions == Fraction(41, 2)
        assert sum(analysis.class_probabilities) == 1
        assert analysis.class_of(analysis.classes[0][0]) == 0

    def test_approximate_majority_splits_mass_between_consensus_classes(self):
        chain = ConfigurationChain.from_colors(
            ApproximateMajorityProtocol(2), (0, 0, 0, 1, 1), arithmetic="exact"
        )
        analysis = analyze_absorption(chain)
        assert analysis.num_classes == 2
        total = sum(analysis.class_probabilities)
        assert total == 1
        assert all(0 < p < 1 for p in analysis.class_probabilities)

    def test_initial_configuration_inside_a_closed_class(self):
        # All agents already agree: the chain starts absorbed.
        chain = ConfigurationChain.from_colors(
            CirclesProtocol(2), (0, 0, 0), arithmetic="exact"
        )
        analysis = analyze_absorption(chain)
        assert analysis.expected_interactions == 0
        assert analysis.class_probabilities.count(Fraction(1)) == 1


class TestHitting:
    def test_hitting_an_unreachable_predicate(self):
        chain = ConfigurationChain.from_colors(CirclesProtocol(2), (0, 0, 1))
        analysis = hitting_analysis(chain, lambda index: False)
        assert analysis.probability == 0.0
        assert analysis.expected_interactions is None

    def test_hitting_the_initial_configuration_is_free(self):
        chain = ConfigurationChain.from_colors(CirclesProtocol(2), (0, 0, 1))
        analysis = hitting_analysis(chain, lambda index: index == 0)
        assert analysis.probability == 1.0
        assert analysis.expected_interactions == 0.0

    def test_criterion_hitting_matches_absorption_for_circles(self):
        protocol = CirclesProtocol(2)
        chain = ConfigurationChain.from_colors(protocol, (0, 0, 0, 1, 1), arithmetic="exact")
        criterion = StableCircles()
        analysis = hitting_analysis(
            chain,
            lambda index: criterion.is_converged_configuration(
                protocol, chain.configuration(index)
            ),
        )
        # For this input the stable configurations are exactly the absorbing
        # ones, so both analyses must produce the same exact expectation.
        assert analysis.almost_sure
        assert analysis.expected_interactions == Fraction(41, 2)

    def test_consensus_can_be_hit_before_absorption(self):
        protocol = ApproximateMajorityProtocol(2)
        chain = ConfigurationChain.from_colors(protocol, (0, 0, 0, 1, 1), arithmetic="exact")
        criterion = OutputConsensus()
        hit = hitting_analysis(
            chain,
            lambda index: criterion.is_converged_configuration(
                protocol, chain.configuration(index)
            ),
        )
        absorbed = analyze_absorption(chain)
        assert hit.almost_sure
        assert hit.expected_interactions < absorbed.expected_interactions

    def test_almost_sure_verdict_is_structural_in_float_mode(self):
        """Float-solver rounding (1 - O(ulp)) must not blur an a.s. hit:
        the verdict comes from the graph, and the probability is exactly 1."""
        protocol = CirclesProtocol(2)
        chain = ConfigurationChain.from_colors(protocol, (0, 0, 0, 1, 1))
        criterion = StableCircles()
        analysis = hitting_analysis(
            chain,
            lambda index: criterion.is_converged_configuration(
                protocol, chain.configuration(index)
            ),
        )
        assert analysis.almost_sure is True
        assert analysis.probability == 1.0  # exactly, not within tolerance
        assert analysis.expected_interactions is not None

    def test_tie_input_never_satisfies_stable_circles(self):
        protocol = CirclesProtocol(2)
        chain = ConfigurationChain.from_colors(protocol, (0, 1), arithmetic="exact")
        criterion = StableCircles()
        analysis = hitting_analysis(
            chain,
            lambda index: criterion.is_converged_configuration(
                protocol, chain.configuration(index)
            ),
        )
        assert analysis.probability == 0
        assert analysis.expected_interactions is None
