"""Tests for the exact engine facade and its API integration."""

import json
import math

import pytest

from repro import run_circles, run_protocol
from repro.api.executor import execute_run
from repro.api.records import RunRecord
from repro.api.spec import RunSpec
from repro.core.circles import CirclesProtocol
from repro.exact import DistributionResult, ExactMarkovEngine
from repro.protocols.approximate_majority import ApproximateMajorityProtocol
from repro.simulation import get_engine
from repro.simulation.convergence import StableCircles
from repro.simulation.observers import Observer


class TestEngineSurface:
    def test_registered_and_flagged_analytical(self):
        assert get_engine("exact") is ExactMarkovEngine
        assert ExactMarkovEngine.engine_name == "exact"
        assert not ExactMarkovEngine.samples_trajectories
        assert not ExactMarkovEngine.tracks_agents

    def test_states_before_run_are_the_initial_configuration(self):
        engine = ExactMarkovEngine.from_colors(CirclesProtocol(2), (0, 0, 1))
        assert len(engine.states()) == 3
        assert engine.num_agents == 3
        assert sum(engine.output_counts().values()) == 3

    def test_run_reports_expected_interactions_and_modal_outcome(self):
        engine = ExactMarkovEngine.from_colors(CirclesProtocol(2), (0, 0, 0, 1, 1))
        assert engine.run(10_000, criterion=StableCircles())
        assert math.isclose(engine.steps_taken, 20.5, rel_tol=1e-9)
        assert engine.outputs() == [0] * 5  # the modal stable outcome
        result = engine.distribution_result
        assert result is not None
        assert result.num_classes == 1
        assert result.always_correct is True

    def test_run_without_criterion_reports_absorption(self):
        engine = ExactMarkovEngine.from_colors(CirclesProtocol(2), (0, 0, 1))
        assert engine.run(0)  # max_steps bounds nothing on the exact engine
        assert math.isclose(engine.steps_taken, 4.5, rel_tol=1e-9)
        assert engine.distribution_result.criterion is None

    def test_unreachable_criterion_reports_budget_and_not_converged(self):
        engine = ExactMarkovEngine.from_colors(CirclesProtocol(2), (0, 1))
        converged = engine.run(777, criterion=StableCircles())
        assert not converged
        assert engine.steps_taken == 777  # mirrors a sampler exhausting its budget
        result = engine.distribution_result
        assert result.criterion_probability == 0.0
        assert result.expected_interactions_to_criterion is None

    def test_seed_is_ignored_deterministically(self):
        runs = []
        for seed in (None, 1, 99):
            engine = ExactMarkovEngine.from_colors(
                CirclesProtocol(2), (0, 0, 0, 1, 1), seed=seed
            )
            engine.run(0, criterion=StableCircles())
            runs.append(engine.distribution_result)
        assert runs[0] == runs[1] == runs[2]

    def test_invalid_run_arguments_mirror_the_shared_contract(self):
        engine = ExactMarkovEngine.from_colors(CirclesProtocol(2), (0, 0, 1))
        with pytest.raises(ValueError, match="max_steps"):
            engine.run(-1)
        with pytest.raises(ValueError, match="check_interval"):
            engine.run(10, criterion=StableCircles(), check_interval=0)

    def test_observers_get_finish_but_no_deltas(self):
        events: list[str] = []

        class Probe(Observer):
            name = "probe"

            def on_start(self, engine):
                events.append("start")

            def on_delta(self, delta):  # pragma: no cover - must not fire
                events.append("delta")

            def on_finish(self, engine, converged):
                events.append(f"finish:{converged}")

        engine = ExactMarkovEngine.from_colors(CirclesProtocol(2), (0, 0, 1))
        engine.add_observer(Probe())
        engine.run(0, criterion=StableCircles())
        assert events == ["start", "finish:True"]

    def test_too_small_population_rejected(self):
        with pytest.raises(ValueError, match="two agents"):
            ExactMarkovEngine.from_colors(CirclesProtocol(2), (0,))


class TestRunnerIntegration:
    def test_run_protocol_exact_reports_distribution_semantics(self):
        result = run_protocol(ApproximateMajorityProtocol(2), [0, 0, 0, 1, 1], engine="exact")
        assert result.engine == "exact"
        assert result.converged  # consensus is almost sure for approximate majority
        # ... but correctness is not: P(all-0) < 1, so `correct` must be False
        # even though the modal outcome is the all-majority consensus.
        assert result.exact is not None
        assert 0 < result.exact["correctness_probability"] < 1
        assert result.correct is False
        assert result.outputs == (0, 0, 0, 0, 0)

    def test_run_protocol_exact_is_always_correct_for_circles(self):
        result = run_protocol(CirclesProtocol(2), [0, 0, 0, 1, 1], engine="exact")
        assert result.correct is True
        assert result.exact["correctness_probability"] == 1.0

    def test_run_circles_exact_omits_ket_exchanges(self):
        result = run_circles([0, 0, 0, 1, 1], engine="exact")
        assert result.ket_exchanges is None
        assert result.converged and result.correct
        assert math.isclose(result.steps, 20.5, rel_tol=1e-9)
        assert result.initial_energy is not None
        assert result.final_energy is not None

    def test_exact_engine_rejects_schedulers_and_traces(self):
        with pytest.raises(ValueError, match="scheduler"):
            from repro.scheduling.round_robin import RoundRobinScheduler

            run_protocol(
                CirclesProtocol(2),
                [0, 0, 1],
                engine="exact",
                scheduler=RoundRobinScheduler(3),
            )
        with pytest.raises(ValueError, match="trace"):
            run_protocol(CirclesProtocol(2), [0, 0, 1], engine="exact", record_trace=True)


class TestSpecIntegration:
    def test_exact_record_round_trips_through_json(self):
        spec = RunSpec(protocol="circles", n=5, k=2, engine="exact", seed=7)
        record = execute_run(spec)
        assert record.engine == "exact"
        restored = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert restored == record
        result = restored.exact_result()
        assert isinstance(result, DistributionResult)
        assert result.num_classes >= 1
        assert restored.exact_result() == record.exact_result()

    def test_sampled_records_have_no_exact_result(self):
        spec = RunSpec(protocol="circles", n=5, k=2, engine="configuration", seed=7)
        record = execute_run(spec)
        assert record.exact_result() is None

    def test_exact_runs_are_trial_deterministic(self):
        records = [
            execute_run(
                RunSpec(
                    protocol="circles", n=5, k=2, engine="exact",
                    seed=seed, workload_seed=5,
                )
            )
            for seed in (1, 2)
        ]
        # Different run seeds, same workload seed: identical analytical output.
        first, second = (record.extras["exact"] for record in records)
        assert first == second
