"""Tests for the linear-solve backends behind the exact analyses."""

import math
from fractions import Fraction

import pytest

from repro.exact import solve as solve_module
from repro.exact.solve import (
    DEFAULT_MAX_TRANSIENT,
    PURE_PYTHON_MAX_TRANSIENT,
    SPARSE_MAX_TRANSIENT,
    SolveTooLarge,
    gaussian_solve,
    practical_max_transient,
    solve_transient_systems,
)


class TestGaussianPivoting:
    def test_float_mode_pivots_by_magnitude(self):
        # The textbook partial-pivoting example: a leading pivot below float
        # epsilon.  Naive (first-nonzero) elimination divides by it and
        # returns x ≈ (0, 1); max-magnitude pivoting recovers the true
        # solution x ≈ (1, 1).  Regression for the float pivot rule.
        tiny = 1e-17
        matrix = [[tiny, 1.0], [1.0, 1.0]]
        [solution] = gaussian_solve(matrix, [[1.0, 2.0]])
        assert math.isclose(solution[0], 1.0, rel_tol=1e-9)
        assert math.isclose(solution[1], 1.0, rel_tol=1e-9)

    def test_float_mode_matches_numpy_on_an_ill_conditioned_system(self):
        numpy = solve_module._numpy()
        if numpy is None:
            pytest.skip("numpy not available")
        matrix = [
            [1e-12, 2.0, 3.0],
            [4.0, 5.0, 6.0],
            [7.0, 8.0, 10.0],
        ]
        rhs = [1.0, 2.0, 3.0]
        [solution] = gaussian_solve([list(row) for row in matrix], [list(rhs)])
        reference = numpy.linalg.solve(numpy.array(matrix), numpy.array(rhs))
        for ours, theirs in zip(solution, reference):
            assert math.isclose(ours, float(theirs), rel_tol=1e-9, abs_tol=1e-12)

    def test_exact_mode_swaps_through_a_zero_pivot(self):
        # Rational elimination takes the first *nonzero* pivot: a zero head
        # must trigger a row swap, not a ZeroDivisionError.
        matrix = [[Fraction(0), Fraction(1)], [Fraction(2), Fraction(0)]]
        [solution] = gaussian_solve(matrix, [[Fraction(3), Fraction(4)]], exact=True)
        assert solution == [Fraction(2), Fraction(3)]
        assert all(isinstance(value, Fraction) for value in solution)

    def test_exact_mode_stays_rational(self):
        matrix = [
            [Fraction(2), Fraction(1)],
            [Fraction(1), Fraction(3)],
        ]
        [solution] = gaussian_solve(matrix, [[Fraction(1), Fraction(1)]], exact=True)
        assert solution == [Fraction(2, 5), Fraction(1, 5)]

    def test_singular_matrix_raises(self):
        matrix = [[1.0, 1.0], [1.0, 1.0]]
        with pytest.raises(ZeroDivisionError):
            gaussian_solve(matrix, [[1.0, 2.0]])


#: A three-state absorbing chain with known hitting times: from state 0 the
#: expected steps to absorption (state 2) solve to exactly 3.0, from state 1
#: to exactly 2.0.
HITTING_ROWS = [
    {0: 0.5, 1: 0.25, 2: 0.25},
    {1: 0.5, 2: 0.5},
    {2: 1.0},
]


class TestTransientSystems:
    def test_dense_float_solution_is_the_analytic_hitting_time(self):
        [solution] = solve_transient_systems(
            HITTING_ROWS, [0, 1], [[1.0, 1.0]], exact=False
        )
        assert math.isclose(solution[0], 3.0, rel_tol=1e-12)
        assert math.isclose(solution[1], 2.0, rel_tol=1e-12)

    def test_sparse_backend_matches_the_dense_solution(self, monkeypatch):
        if solve_module._scipy_splu() is None:
            pytest.skip("scipy not available")
        dense = solve_transient_systems(
            HITTING_ROWS, [0, 1], [[1.0, 1.0]], exact=False
        )
        # Drop the crossover to zero so the same tiny system routes through
        # the sparse LU factorization.
        monkeypatch.setattr(solve_module, "DEFAULT_MAX_TRANSIENT", 0)
        sparse = solve_transient_systems(
            HITTING_ROWS, [0, 1], [[1.0, 1.0]], exact=False
        )
        for dense_value, sparse_value in zip(dense[0], sparse[0]):
            assert math.isclose(dense_value, sparse_value, rel_tol=1e-12)

    def test_exact_solution_is_rational_and_matches(self):
        rows = [
            {key: Fraction(value).limit_denominator() for key, value in row.items()}
            for row in HITTING_ROWS
        ]
        [solution] = solve_transient_systems(
            rows, [0, 1], [[Fraction(1), Fraction(1)]], exact=True
        )
        assert solution == [Fraction(3), Fraction(2)]

    def test_cap_raises_and_none_disables_it(self):
        with pytest.raises(SolveTooLarge):
            solve_transient_systems(
                HITTING_ROWS, [0, 1], [[1.0, 1.0]], exact=False, max_transient=1
            )
        [solution] = solve_transient_systems(
            HITTING_ROWS, [0, 1], [[1.0, 1.0]], exact=False, max_transient=None
        )
        assert math.isclose(solution[0], 3.0, rel_tol=1e-12)


class TestPracticalCap:
    def test_three_way_backend_awareness(self, monkeypatch):
        monkeypatch.setattr(solve_module, "_numpy", lambda: None)
        assert practical_max_transient() == PURE_PYTHON_MAX_TRANSIENT
        monkeypatch.setattr(solve_module, "_numpy", lambda: object())
        monkeypatch.setattr(solve_module, "_scipy_splu", lambda: None)
        assert practical_max_transient() == DEFAULT_MAX_TRANSIENT
        monkeypatch.setattr(solve_module, "_scipy_splu", lambda: object())
        assert practical_max_transient() == SPARSE_MAX_TRANSIENT

    def test_caps_are_ordered(self):
        assert PURE_PYTHON_MAX_TRANSIENT < DEFAULT_MAX_TRANSIENT < SPARSE_MAX_TRANSIENT
