"""Tests for the symmetry-quotiented exact chain and its lifting surface.

The contract under test is the one :mod:`repro.exact.quotient` documents:
the quotient is an *internal* optimization — every reported quantity keeps
unquotiented semantics, bit for bit in rational mode, with ``num_orbits``
as the only trace that a quotient happened.
"""

import math
from fractions import Fraction

import pytest

import repro  # noqa: F401  (populates the protocol registry)
from repro.core.circles import CirclesProtocol
from repro.exact import (
    ChainTooLarge,
    ConfigurationChain,
    ExactMarkovEngine,
    QuotientChain,
    SolveTooLarge,
    exact_expected_convergence,
)
from repro.protocols.registry import DEFAULT_REGISTRY, get_protocol
from repro.simulation.convergence import OutputConsensus, StableCircles

#: A perfectly tied two-color input: its stabilizer contains the color swap.
TIED = (0, 0, 1, 1)

#: Chain cap for the registry-wide matrix — small enough that protocols with
#: huge reachable spaces (circles-unordered) skip fast instead of stalling
#: the suite in rational arithmetic.
MATRIX_CAP = 500


class TestStabilizer:
    def test_tied_input_is_stabilized_by_the_color_swap(self):
        chain = QuotientChain.from_colors(CirclesProtocol(2), TIED)
        assert chain.stabilizer_order == 2
        assert chain.is_quotiented
        assert chain.symmetry is not None

    def test_untied_input_has_a_trivial_stabilizer(self):
        # The protocol has the swap symmetry, but (0, 0, 1) is not fixed by
        # it — quotienting by the full group would skew the trajectory
        # measure, so only the stabilizer may be folded.
        chain = QuotientChain.from_colors(CirclesProtocol(2), (0, 0, 1))
        assert chain.stabilizer_order == 1
        assert not chain.is_quotiented

    def test_trivial_stabilizer_chain_is_bit_identical_to_the_base_chain(self):
        quotient = QuotientChain.from_colors(
            CirclesProtocol(2), (0, 0, 1), arithmetic="exact"
        )
        plain = ConfigurationChain.from_colors(
            CirclesProtocol(2), (0, 0, 1), arithmetic="exact"
        )
        assert quotient.keys == plain.keys
        assert quotient.rows == plain.rows
        assert quotient.change_probability == plain.change_probability

    def test_ordered_circles_k3_stabilizer_is_cyclic(self):
        # Ordered Circles is equivariant under color *rotations* only (the
        # order relation breaks reflections): the all-tie k=3 stabilizer is
        # the cyclic group of order 3, not S3.
        chain = QuotientChain.from_colors(CirclesProtocol(3), (0, 0, 1, 1, 2, 2))
        assert chain.stabilizer_order == 3

    def test_uncompiled_chain_degrades_to_the_trivial_group(self):
        chain = QuotientChain.from_colors(CirclesProtocol(2), TIED, compiled=False)
        assert chain.compiled is None
        assert chain.stabilizer_order == 1
        plain = ConfigurationChain.from_colors(CirclesProtocol(2), TIED, compiled=False)
        assert chain.keys == plain.keys


class TestOrbits:
    def test_orbit_sizes_sum_to_the_source_configuration_count(self):
        quotient = QuotientChain.from_colors(CirclesProtocol(2), TIED)
        plain = ConfigurationChain.from_colors(CirclesProtocol(2), TIED)
        assert quotient.num_configurations < plain.num_configurations
        assert quotient.num_source_configurations == plain.num_configurations
        total = sum(
            quotient.orbit_size(index)
            for index in range(quotient.num_configurations)
        )
        assert total == plain.num_configurations

    def test_orbit_keys_are_closed_under_the_stabilizer(self):
        quotient = QuotientChain.from_colors(CirclesProtocol(2), TIED)
        plain = ConfigurationChain.from_colors(CirclesProtocol(2), TIED)
        source_keys = set(plain.keys)
        seen = set()
        for index in range(quotient.num_configurations):
            members = quotient.orbit_keys(index)
            assert len(members) in (1, 2)  # stabilizer order 2
            seen.update(members)
        assert seen == source_keys

    def test_lifted_output_distribution_matches_the_source_chain_exactly(self):
        quotient = QuotientChain.from_colors(
            CirclesProtocol(2), TIED, arithmetic="exact"
        )
        plain = ConfigurationChain.from_colors(
            CirclesProtocol(2), TIED, arithmetic="exact"
        )
        for interactions in (0, 1, 3, 9):
            assert quotient.output_distribution_after(
                interactions
            ) == plain.output_distribution_after(interactions)

    def test_lifted_distribution_stays_normalized(self):
        quotient = QuotientChain.from_colors(CirclesProtocol(2), TIED)
        for interactions in (0, 4):
            total = sum(quotient.output_distribution_after(interactions).values())
            assert math.isclose(total, 1.0, abs_tol=1e-12)


class TestEngineBitIdentity:
    @pytest.mark.parametrize("name", sorted(DEFAULT_REGISTRY.names()))
    def test_rational_results_are_bit_identical_across_the_registry(self, name):
        protocol = get_protocol(name, 2)
        results = []
        for quotient in (True, False):
            try:
                engine = ExactMarkovEngine.from_colors(
                    protocol,
                    TIED,
                    arithmetic="exact",
                    quotient=quotient,
                    max_configurations=MATRIX_CAP,
                )
                engine.run(0)
            except (ChainTooLarge, SolveTooLarge):
                pytest.skip(f"{name} exceeds the exact caps at n=4")
            results.append(engine.distribution_result.to_dict())
        quotiented, plain = results
        # ``num_orbits`` is the one documented difference; everything else —
        # class ordering, examples, rational strings — must match bit for bit.
        quotiented.pop("num_orbits")
        assert plain.pop("num_orbits") is None
        assert quotiented == plain

    def test_criterion_run_is_bit_identical_for_circles(self):
        results = []
        for quotient in (True, False):
            engine = ExactMarkovEngine.from_colors(
                CirclesProtocol(2),
                TIED,
                arithmetic="exact",
                quotient=quotient,
            )
            engine.run(0, criterion=StableCircles())
            results.append(engine.distribution_result.to_dict())
        quotiented, plain = results
        assert quotiented.pop("num_orbits") is not None
        assert plain.pop("num_orbits") is None
        assert quotiented == plain

    def test_num_orbits_traces_the_quotient(self):
        engine = ExactMarkovEngine.from_colors(
            CirclesProtocol(2), TIED, arithmetic="exact"
        )
        engine.run(0)
        result = engine.distribution_result
        assert result.num_orbits is not None
        assert result.num_orbits < result.num_configurations


class TestCriterionFallback:
    def test_color_naming_criterion_falls_back_to_the_unquotiented_chain(self):
        engine = ExactMarkovEngine.from_colors(CirclesProtocol(2), TIED)
        criterion = OutputConsensus(target=0)
        assert not criterion.symmetry_invariant
        engine.run(0, criterion=criterion)
        assert engine.distribution_result.num_orbits is None

    def test_color_blind_consensus_keeps_the_quotient(self):
        engine = ExactMarkovEngine.from_colors(CirclesProtocol(2), TIED)
        criterion = OutputConsensus()
        assert criterion.symmetry_invariant
        engine.run(0, criterion=criterion)
        assert engine.distribution_result.num_orbits is not None

    def test_fallback_and_quotient_agree_on_the_target_probability(self):
        # The fallback result is computed on the source chain, so the
        # symmetric input's per-color consensus probability must be exactly
        # half the color-blind consensus probability.
        blind = ExactMarkovEngine.from_colors(
            CirclesProtocol(2), TIED, arithmetic="exact"
        )
        blind.run(0, criterion=OutputConsensus())
        targeted = ExactMarkovEngine.from_colors(
            CirclesProtocol(2), TIED, arithmetic="exact"
        )
        targeted.run(0, criterion=OutputConsensus(target=0))
        blind_probability = blind.distribution_result.criterion_probability
        targeted_probability = targeted.distribution_result.criterion_probability
        assert targeted_probability == blind_probability / 2

    def test_convenience_function_gates_the_quotient_on_invariance(self):
        # A majority input: StableCircles is almost sure, so the expectation
        # exists and must agree across the quotiented and plain pipelines.
        colors = (0, 0, 0, 1, 1)
        expected = exact_expected_convergence(
            CirclesProtocol(2), colors, StableCircles()
        )
        unquotiented = exact_expected_convergence(
            CirclesProtocol(2), colors, StableCircles(), quotient=False
        )
        assert expected is not None
        assert math.isclose(expected, unquotiented, rel_tol=1e-9)
        # A color-naming criterion flips the gate off internally; the call
        # must still succeed (and agree with the explicit opt-out).
        targeted = exact_expected_convergence(
            CirclesProtocol(2), colors, OutputConsensus(target=0)
        )
        targeted_plain = exact_expected_convergence(
            CirclesProtocol(2), colors, OutputConsensus(target=0), quotient=False
        )
        assert targeted == targeted_plain


class TestScale:
    """The acceptance case: tied circles k=3 fits only through the quotient."""

    COLORS = (0, 0, 1, 1, 2, 2)
    #: Between the quotient size (192 orbits) and the source size (560).
    CAP = 500

    def test_unquotiented_chain_exceeds_the_cap(self):
        with pytest.raises(ChainTooLarge):
            ConfigurationChain.from_colors(
                CirclesProtocol(3), self.COLORS, max_configurations=self.CAP
            )

    def test_quotient_solves_the_same_input_exactly(self):
        engine = ExactMarkovEngine.from_colors(
            CirclesProtocol(3),
            self.COLORS,
            arithmetic="exact",
            max_configurations=self.CAP,
        )
        engine.run(0)
        result = engine.distribution_result
        # Unquotiented semantics, reconstructed from 192 orbit
        # representatives: 560 source configurations and the exact expected
        # absorption time of the *source* chain.
        assert result.num_orbits == 192
        assert result.num_configurations == 560
        assert result.expected_interactions_exact == "335/14"
        assert math.isclose(
            sum(summary.probability for summary in result.classes), 1.0
        )

    def test_engine_quotient_flag_off_raises_at_the_same_cap(self):
        engine = ExactMarkovEngine.from_colors(
            CirclesProtocol(3),
            self.COLORS,
            quotient=False,
            max_configurations=self.CAP,
        )
        with pytest.raises(ChainTooLarge):
            engine.run(0)


class TestAbsorptionLift:
    def test_lifted_class_probabilities_sum_to_one_exactly(self):
        engine = ExactMarkovEngine.from_colors(
            CirclesProtocol(2), TIED, arithmetic="exact"
        )
        engine.run(0)
        result = engine.distribution_result
        assert result.num_orbits is not None
        probabilities = [
            Fraction(summary.probability_exact) for summary in result.classes
        ]
        assert sum(probabilities) == 1
        assert all(probability > 0 for probability in probabilities)

    def test_lift_classes_splits_a_symmetric_orbit_into_source_classes(self):
        chain = QuotientChain.from_colors(
            CirclesProtocol(2), TIED, arithmetic="exact"
        )
        plain = ConfigurationChain.from_colors(
            CirclesProtocol(2), TIED, arithmetic="exact"
        )
        # Total lifted classes over all quotient absorbing states must cover
        # exactly the source chain's absorbing states, with no duplicates.
        quotient_absorbing = [
            index
            for index, row in enumerate(chain.rows)
            if set(row) == {index}
        ]
        lifted = []
        for index in quotient_absorbing:
            lifted.extend(chain.lift_classes([index]))
        source_absorbing = {
            plain.keys[index]
            for index, row in enumerate(plain.rows)
            if set(row) == {index}
        }
        members = [
            configuration
            for conf_class in lifted
            for configuration in conf_class
        ]
        assert len(members) == len(source_absorbing)
