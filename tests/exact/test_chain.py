"""Unit tests for the exact configuration chain."""

import math
from fractions import Fraction

import pytest

from repro.core.circles import CirclesProtocol
from repro.exact import ChainTooLarge, ConfigurationChain
from repro.protocols.exact_majority import ExactMajorityProtocol


class TestConstruction:
    def test_rows_are_probability_distributions_exact(self):
        chain = ConfigurationChain.from_colors(
            CirclesProtocol(2), (0, 0, 0, 1, 1), arithmetic="exact"
        )
        for row in chain.rows:
            assert sum(row.values()) == 1
            assert all(isinstance(p, Fraction) and p > 0 for p in row.values())

    def test_rows_are_probability_distributions_float(self):
        chain = ConfigurationChain.from_colors(CirclesProtocol(2), (0, 0, 0, 1, 1))
        for row in chain.rows:
            assert math.isclose(sum(row.values()), 1.0, abs_tol=1e-12)

    def test_initial_index_is_zero_and_keys_invert(self):
        chain = ConfigurationChain.from_colors(CirclesProtocol(2), (0, 0, 1))
        assert chain.initial_index == 0
        for index, key in enumerate(chain.keys):
            assert chain.index[key] == index
        assert len(chain.states_of(0)) == 3

    def test_exact_and_float_modes_agree(self):
        exact = ConfigurationChain.from_colors(
            CirclesProtocol(2), (0, 0, 1), arithmetic="exact"
        )
        approx = ConfigurationChain.from_colors(CirclesProtocol(2), (0, 0, 1))
        assert exact.keys == approx.keys
        for exact_row, float_row in zip(exact.rows, approx.rows):
            assert set(exact_row) == set(float_row)
            for target in exact_row:
                assert math.isclose(float(exact_row[target]), float_row[target])

    def test_uncompiled_fallback_builds_the_same_chain(self):
        compiled = ConfigurationChain.from_colors(CirclesProtocol(2), (0, 0, 0, 1, 1))
        fallback = ConfigurationChain.from_colors(
            CirclesProtocol(2), (0, 0, 0, 1, 1), compiled=False
        )
        assert fallback.compiled is None and compiled.compiled is not None
        assert compiled.keys == fallback.keys
        assert compiled.rows == fallback.rows

    def test_cap_raises_instead_of_truncating(self):
        with pytest.raises(ChainTooLarge):
            ConfigurationChain.from_colors(
                CirclesProtocol(3), (0, 1, 1, 2, 2, 2), max_configurations=10
            )

    def test_reachable_space_of_exactly_the_cap_succeeds(self):
        # Cap-edge regression: the guard must only fire on configuration
        # cap+1, so a space of exactly ``cap`` states builds — even though
        # the BFS keeps re-encountering (re-interning) existing keys after
        # the cap is reached.
        probe = ConfigurationChain.from_colors(CirclesProtocol(2), (0, 0, 0, 1, 1))
        chain = ConfigurationChain.from_colors(
            CirclesProtocol(2),
            (0, 0, 0, 1, 1),
            max_configurations=probe.num_configurations,
        )
        assert chain.num_configurations == probe.num_configurations
        assert chain.rows == probe.rows

    def test_one_below_the_reachable_count_raises(self):
        probe = ConfigurationChain.from_colors(CirclesProtocol(2), (0, 0, 0, 1, 1))
        with pytest.raises(ChainTooLarge):
            ConfigurationChain.from_colors(
                CirclesProtocol(2),
                (0, 0, 0, 1, 1),
                max_configurations=probe.num_configurations - 1,
            )

    def test_reinterning_a_present_key_at_the_cap_returns_its_index(self):
        probe = ConfigurationChain.from_colors(CirclesProtocol(2), (0, 0, 1))
        cap = probe.num_configurations
        chain = ConfigurationChain.from_colors(
            CirclesProtocol(2), (0, 0, 1), max_configurations=cap
        )
        # The chain is full: every key is interned.  Re-interning any of
        # them must return the existing index, never consult the cap.
        for index, key in enumerate(chain.keys):
            assert chain._intern(key, cap) == index
        assert chain.num_configurations == cap

    def test_too_small_population_rejected(self):
        with pytest.raises(ValueError, match="two agents"):
            ConfigurationChain.from_colors(CirclesProtocol(2), (0,))

    def test_unknown_arithmetic_rejected(self):
        with pytest.raises(ValueError, match="arithmetic"):
            ConfigurationChain.from_colors(CirclesProtocol(2), (0, 1), arithmetic="decimal")


class TestDistributions:
    def test_distribution_after_zero_is_the_initial_point_mass(self):
        chain = ConfigurationChain.from_colors(CirclesProtocol(2), (0, 0, 1))
        assert chain.distribution_after(0) == {0: 1.0}

    def test_distribution_stays_normalized_exactly(self):
        chain = ConfigurationChain.from_colors(
            CirclesProtocol(2), (0, 0, 0, 1, 1), arithmetic="exact"
        )
        for t in (1, 5, 20):
            assert sum(chain.distribution_after(t).values()) == 1

    def test_mass_concentrates_on_the_stable_outcome(self):
        chain = ConfigurationChain.from_colors(
            CirclesProtocol(2), (0, 0, 1), arithmetic="exact"
        )
        late = chain.output_distribution_after(200)
        assert late[((0, 3),)] > Fraction(999, 1000)

    def test_two_agent_chain(self):
        chain = ConfigurationChain.from_colors(ExactMajorityProtocol(2), (0, 1))
        distribution = chain.distribution_after(3)
        assert math.isclose(sum(distribution.values()), 1.0, abs_tol=1e-12)

    def test_negative_horizon_rejected(self):
        chain = ConfigurationChain.from_colors(CirclesProtocol(2), (0, 1))
        with pytest.raises(ValueError):
            chain.distribution_after(-1)

    def test_output_keys_match_configuration_outputs(self):
        protocol = CirclesProtocol(2)
        chain = ConfigurationChain.from_colors(protocol, (0, 0, 1))
        for index in range(chain.num_configurations):
            histogram: dict[int, int] = {}
            for state in chain.states_of(index):
                color = protocol.output(state)
                histogram[color] = histogram.get(color, 0) + 1
            assert chain.output_key(index) == tuple(sorted(histogram.items()))
