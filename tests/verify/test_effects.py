"""Effect extraction: the ground truth every certificate refers to."""

import pytest

import repro  # noqa: F401  (populates the default protocol registry)
from repro.compile import compile_protocol
from repro.core.circles import CirclesProtocol
from repro.protocols.registry import DEFAULT_REGISTRY
from repro.verify.effects import effect_dot, transition_effects
from repro.verify.verifier import canonical_num_colors

PROTOCOL_NAMES = DEFAULT_REGISTRY.names()


def compiled_registry_protocol(name):
    return compile_protocol(DEFAULT_REGISTRY.create(name, canonical_num_colors(name)))


def test_effects_partition_the_changed_pairs():
    compiled = compile_protocol(CirclesProtocol(3))
    effects = transition_effects(compiled)
    seen = set()
    for effect in effects:
        assert effect.pairs
        for pair in effect.pairs:
            assert pair not in seen
            seen.add(pair)
    d = compiled.num_states
    expected = {
        (p, q)
        for p in range(d)
        for q in range(d)
        if compiled.transition_codes(p, q)[2]
    }
    assert seen == expected


@pytest.mark.parametrize("protocol_name", PROTOCOL_NAMES)
def test_every_effect_conserves_population_size(protocol_name):
    compiled = compiled_registry_protocol(protocol_name)
    ones = (1,) * compiled.num_states
    for effect in transition_effects(compiled):
        assert effect_dot(ones, effect) == 0
        assert sum(change for _, change in effect.sparse) == 0


def test_sparse_matches_dense_and_the_table():
    compiled = compile_protocol(CirclesProtocol(2))
    d = compiled.num_states
    for effect in transition_effects(compiled):
        dense = effect.dense()
        assert len(dense) == d
        assert dict(effect.sparse) == {
            code: value for code, value in enumerate(dense) if value
        }
        p, q = effect.pairs[0]
        a, b, changed = compiled.transition_codes(p, q)
        assert changed
        recomputed = [0] * d
        for code, change in ((p, -1), (q, -1), (a, 1), (b, 1)):
            recomputed[code] += change
        assert recomputed == dense


def test_zero_effects_only_for_multiset_preserving_pairs():
    for name in PROTOCOL_NAMES:
        compiled = compiled_registry_protocol(name)
        for effect in transition_effects(compiled):
            if not effect.is_zero:
                continue
            for p, q in effect.pairs:
                a, b, _ = compiled.transition_codes(p, q)
                assert sorted((a, b)) == sorted((p, q))
