"""ProtocolReport's JSON round trip must be lossless, and the CLI must
exit non-zero exactly when ERROR diagnostics are present."""

import json

import pytest

import repro  # noqa: F401  (populates the default protocol registry)
from repro.protocols.registry import DEFAULT_REGISTRY
from repro.verify.lint import Diagnostic, Severity
from repro.verify.protolint import main as protolint_main
from repro.verify.report import ProtocolReport, summarize
from repro.verify.verifier import canonical_num_colors, verify_protocol


@pytest.fixture(scope="module")
def circles_report():
    return verify_protocol(DEFAULT_REGISTRY.create("circles", 2), name="circles")


def test_round_trip_through_json_is_lossless(circles_report):
    payload = json.loads(json.dumps(circles_report.to_dict()))
    restored = ProtocolReport.from_dict(payload)
    assert restored == circles_report
    assert restored.to_dict() == circles_report.to_dict()


def test_report_payload_is_json_safe(circles_report):
    def no_floats(value):
        assert not isinstance(value, float)
        if isinstance(value, dict):
            for key, inner in value.items():
                assert isinstance(key, str)
                no_floats(inner)
        elif isinstance(value, (list, tuple)):
            for inner in value:
                no_floats(inner)

    no_floats(circles_report.to_dict())


def test_severity_ordering_and_max(circles_report):
    assert Severity.INFO < Severity.WARNING < Severity.ERROR
    worst = circles_report.max_severity()
    assert worst is Severity.INFO
    assert not circles_report.has_errors()
    empty = ProtocolReport(name="x", num_colors=1, compiled=False)
    assert empty.max_severity() is None


def test_diagnostic_round_trip():
    diagnostic = Diagnostic(
        Severity.WARNING, "some-code", "a message", {"count": 3}
    )
    assert Diagnostic.from_dict(diagnostic.to_dict()) == diagnostic


def test_summarize_mentions_the_headline_facts(circles_report):
    line = summarize(circles_report)
    assert "circles" in line
    assert "always-correct=True" in line


def test_cli_clean_registry_exits_zero(capsys):
    assert protolint_main(["circles"]) == 0
    out = capsys.readouterr().out
    assert "circles_k2" in out and "circles_k3" in out


def test_cli_json_output_parses(capsys):
    assert protolint_main(["--json", "circles"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"circles_k2", "circles_k3"}
    assert payload["circles_k2"]["silence_certified"] is False
    assert payload["circles_k2"]["certified_invariants"]["population-size"] is True


def test_cli_out_writes_certificates(tmp_path, capsys):
    assert protolint_main(["--out", str(tmp_path), "circles"]) == 0
    written = sorted(path.name for path in tmp_path.glob("*.json"))
    assert written == ["circles-tie-report_k2.json", "circles_k2.json", "circles_k3.json"] or (
        written == ["circles_k2.json", "circles_k3.json"]
    )
    payload = json.loads((tmp_path / "circles_k2.json").read_text())
    assert payload["case"] == "circles_k2"
    assert "regenerate" in payload


def _make_broken_protocol(name, *, unsound):
    """A two-state protocol that is either ERROR- or WARNING-broken."""
    from collections.abc import Iterator
    from typing import NamedTuple

    from repro.protocols.base import PopulationProtocol, TransitionResult

    class Bit(NamedTuple):
        value: int

    class Broken(PopulationProtocol):
        def states(self) -> Iterator:
            yield Bit(0)
            yield Bit(1)

        def initial_state(self, color: int):
            self.validate_color(color)
            return Bit(color % 2)

        def output(self, state) -> int:
            return state.value

        def transition(self, initiator, responder) -> TransitionResult:
            if unsound and initiator.value == 1 and responder.value == 0:
                # Changes states but reports changed=False: an ERROR.
                return TransitionResult(Bit(1), Bit(1), False)
            if not unsound and initiator.value == responder.value == 0:
                # changed=True on an identity pair: a WARNING.
                return TransitionResult(initiator, responder, True)
            return TransitionResult(initiator, responder, False)

    Broken.name = name
    return Broken


def test_cli_fails_on_error_diagnostics(capsys):
    """Register a broken protocol, lint it, and expect a non-zero exit."""
    name = "lint-scaffold-broken"
    DEFAULT_REGISTRY.register(name, _make_broken_protocol(name, unsound=True))
    try:
        assert protolint_main([name]) == 1
        err = capsys.readouterr().err
        assert "protolint" in err
        assert protolint_main([name, "--fail-on", "never"]) == 0
    finally:
        del DEFAULT_REGISTRY._factories[name]


def test_fail_on_warning_tightens_the_threshold(capsys):
    name = "lint-scaffold-warning"
    DEFAULT_REGISTRY.register(name, _make_broken_protocol(name, unsound=False))
    try:
        assert protolint_main([name]) == 0
        assert protolint_main([name, "--fail-on", "warning"]) == 1
    finally:
        del DEFAULT_REGISTRY._factories[name]


def test_canonical_num_colors_matches_the_conftest_policy():
    assert canonical_num_colors("circles") == 2
    assert canonical_num_colors("exact-majority") == 2
    with pytest.raises(KeyError):
        canonical_num_colors("definitely-not-registered")
