"""Ranking certificates: Theorem 3.4 as a one-shot static proof."""

import pytest

import repro  # noqa: F401  (populates the default protocol registry)
from repro.compile import compile_protocol
from repro.core.circles import CirclesProtocol
from repro.core.potential import compare_weight_histograms, state_weights
from repro.protocols.approximate_majority import ApproximateMajorityProtocol
from repro.protocols.leader_election import LeaderElectionProtocol
from repro.protocols.registry import DEFAULT_REGISTRY
from repro.verify.effects import transition_effects
from repro.verify.ranking import (
    check_ranking,
    default_candidates,
    residual_preserves_brakets,
    synthesize_ranking,
)
from repro.verify.verifier import canonical_num_colors

PROTOCOL_NAMES = DEFAULT_REGISTRY.names()


def certificate_for(protocol):
    compiled = compile_protocol(protocol)
    effects = transition_effects(compiled)
    certificate = synthesize_ranking(effects, default_candidates(compiled))
    return compiled, effects, certificate


@pytest.mark.parametrize("protocol_name", PROTOCOL_NAMES)
def test_synthesized_certificates_reverify(protocol_name):
    protocol = DEFAULT_REGISTRY.create(
        protocol_name, canonical_num_colors(protocol_name)
    )
    _, effects, certificate = certificate_for(protocol)
    assert check_ranking(effects, certificate)


@pytest.mark.parametrize("num_colors", [2, 3])
def test_circles_gets_a_theorem_3_4_certificate(num_colors):
    """Every ket exchange is killed; the residual is exchange-free."""
    compiled, effects, certificate = certificate_for(CirclesProtocol(num_colors))
    assert certificate.components, "no ranking component was synthesized"
    # The first component is the paper's own potential argument: the count
    # of minimum-weight agents can only grow.
    assert certificate.components[0].name == "-#(weight<=1)"
    # Not a *silence* certificate: output broadcasts legitimately admit
    # unbounded adversarial schedules...
    assert not certificate.is_silence_certificate
    # ...but everything residual preserves both agents' bra-kets, which is
    # exactly "finitely many exchanges" (Theorem 3.4).
    assert residual_preserves_brakets(compiled, effects, certificate) is True
    weights = state_weights(compiled.states, num_colors)
    for effect, level in zip(effects, certificate.levels):
        for p, q in effect.pairs:
            a, b, _ = compiled.transition_codes(p, q)
            before = {weights[p]: 1}
            before[weights[q]] = before.get(weights[q], 0) + 1
            after = {weights[a]: 1}
            after[weights[b]] = after.get(weights[b], 0) + 1
            comparison = compare_weight_histograms(after, before)
            if level is not None:
                # Killed transitions strictly decrease the ordinal potential.
                assert comparison == -1
            else:
                # Residual transitions leave it untouched.
                assert comparison == 0


def test_leader_election_gets_a_full_silence_certificate():
    _, effects, certificate = certificate_for(LeaderElectionProtocol(1))
    assert effects, "leader election has changed transitions"
    assert certificate.is_silence_certificate
    assert check_ranking(effects, certificate)


def test_approximate_majority_has_no_certificate():
    """The heuristic protocol admits count-restoring adversarial loops, so
    no linear component can make progress — the pool synthesizes nothing."""
    _, effects, certificate = certificate_for(ApproximateMajorityProtocol(2))
    assert effects
    assert certificate.components == ()
    assert not certificate.is_silence_certificate
    assert set(certificate.residual_indices) == set(range(len(effects)))


def test_exact_majority_kills_cancellations_but_not_weak_flips():
    protocol = DEFAULT_REGISTRY.create("exact-majority", 2)
    compiled, effects, certificate = certificate_for(protocol)
    assert certificate.components
    assert not certificate.is_silence_certificate
    # The killed effects are exactly the strong-strong cancellations: the
    # number of strong agents drops by two.
    strong = tuple(
        1 if state.strong else 0 for state in compiled.states
    )
    for effect, level in zip(effects, certificate.levels):
        strong_delta = sum(
            strong[code] * change for code, change in effect.sparse
        )
        if level is not None:
            assert strong_delta < 0
        else:
            assert strong_delta == 0


def test_levels_align_with_effects():
    compiled, effects, certificate = certificate_for(CirclesProtocol(3))
    assert len(certificate.levels) == len(effects)
    assert certificate.num_effects == len(effects)
    killed = [
        i for i, level in enumerate(certificate.levels) if level is not None
    ]
    assert set(killed) | set(certificate.residual_indices) == set(
        range(len(effects))
    )
