"""Drift tests for the committed static certificates.

Every file under ``tests/golden/verify/`` pins the probe-independent
certificate payload (state space, conservation laws, ranking certificate,
symmetry group) of one registry case.  The tests re-derive each certificate
from the current δ-tables and compare; a mismatch means a protocol's
transition function (or the verifier) changed behaviour.

Regenerate after an intentional change with::

    PYTHONPATH=src python -m repro.verify.protolint --out tests/golden/verify
"""

import json
from pathlib import Path

import pytest

import repro  # noqa: F401  (populates the default protocol registry)
from repro.protocols.registry import DEFAULT_REGISTRY
from repro.verify.protolint import REGENERATE
from repro.verify.verifier import registry_cases, verify_protocol

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden" / "verify"
GOLDEN_FILES = sorted(GOLDEN_DIR.glob("*.json"))
CASES = registry_cases()


def test_every_registry_case_has_a_golden_certificate():
    missing = [
        case_id
        for case_id, _, _ in CASES
        if not (GOLDEN_DIR / f"{case_id}.json").exists()
    ]
    assert not missing, (
        f"no golden certificate for {missing}; regenerate with: {REGENERATE}"
    )


def test_no_stale_golden_certificates():
    known = {case_id for case_id, _, _ in CASES}
    stale = [path.name for path in GOLDEN_FILES if path.stem not in known]
    assert not stale, (
        f"golden certificates {stale} have no registry case; "
        f"regenerate with: {REGENERATE}"
    )


@pytest.mark.parametrize(
    "case_id,protocol_name,num_colors", CASES, ids=[c[0] for c in CASES]
)
def test_certificates_have_not_drifted(case_id, protocol_name, num_colors):
    path = GOLDEN_DIR / f"{case_id}.json"
    golden = json.loads(path.read_text())
    assert golden.pop("case") == case_id
    assert golden.pop("regenerate") == REGENERATE
    protocol = DEFAULT_REGISTRY.create(protocol_name, num_colors)
    report = verify_protocol(protocol, name=protocol_name)
    assert report.certificate_dict() == golden, (
        f"certificate drift for {case_id}; if intentional, regenerate with: "
        f"{REGENERATE}"
    )
