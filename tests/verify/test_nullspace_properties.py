"""Property/fuzz suite for the rational null-space solver."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact.solve import rational_nullspace, rational_rref

matrices = st.integers(min_value=1, max_value=5).flatmap(
    lambda dimension: st.lists(
        st.lists(
            st.integers(min_value=-4, max_value=4),
            min_size=dimension,
            max_size=dimension,
        ),
        min_size=0,
        max_size=6,
    ).map(lambda rows: (rows, dimension))
)


@given(matrices)
@settings(max_examples=150, deadline=None)
def test_basis_vectors_annihilate_every_row_exactly(case):
    rows, dimension = case
    basis = rational_nullspace(rows, dimension)
    for vector in basis:
        for row in rows:
            assert sum(Fraction(r) * v for r, v in zip(row, vector)) == 0


@given(matrices)
@settings(max_examples=150, deadline=None)
def test_rank_nullity(case):
    rows, dimension = case
    _, pivots = rational_rref([[Fraction(v) for v in row] for row in rows])
    basis = rational_nullspace(rows, dimension)
    assert len(pivots) + len(basis) == dimension


@given(matrices)
@settings(max_examples=100, deadline=None)
def test_rational_and_float_paths_agree(case):
    """Float dot products of the exact basis are numerically zero."""
    rows, dimension = case
    basis = rational_nullspace(rows, dimension)
    for vector in basis:
        floats = [float(value) for value in vector]
        for row in rows:
            assert abs(sum(r * v for r, v in zip(row, floats))) < 1e-9


@given(matrices)
@settings(max_examples=100, deadline=None)
def test_basis_is_linearly_independent(case):
    rows, dimension = case
    basis = rational_nullspace(rows, dimension)
    if not basis:
        return
    _, pivots = rational_rref([list(vector) for vector in basis])
    assert len(pivots) == len(basis)


def test_no_rows_yields_the_standard_basis():
    basis = rational_nullspace([], 3)
    assert basis == [
        (Fraction(1), Fraction(0), Fraction(0)),
        (Fraction(0), Fraction(1), Fraction(0)),
        (Fraction(0), Fraction(0), Fraction(1)),
    ]


def test_full_rank_rows_yield_empty_nullspace():
    basis = rational_nullspace([[1, 0], [1, 1]], 2)
    assert basis == []
