"""Lint diagnostics: deliberately broken protocols must be caught, the
registry must stay clean, and every registered protocol must declare a
compile signature."""

from collections.abc import Iterator
from typing import NamedTuple

import pytest

import repro  # noqa: F401  (populates the default protocol registry)
from repro.compile import compile_protocol
from repro.protocols.base import PopulationProtocol, TransitionResult
from repro.protocols.registry import DEFAULT_REGISTRY
from repro.verify.lint import (
    Severity,
    lint_changed_flags,
    lint_compile_signature,
    lint_determinism,
)
from repro.verify.verifier import canonical_num_colors, verify_protocol

PROTOCOL_NAMES = DEFAULT_REGISTRY.names()


class _Bit(NamedTuple):
    value: int


class _TwoStateBase(PopulationProtocol):
    """A two-state scaffold: subclasses override ``transition`` to be broken."""

    name = "lint-scaffold"

    def states(self) -> Iterator:
        yield _Bit(0)
        yield _Bit(1)

    def initial_state(self, color: int):
        self.validate_color(color)
        return _Bit(color % 2)

    def output(self, state) -> int:
        return state.value


class _UnsoundUnchangedFlag(_TwoStateBase):
    """Changes states but reports changed=False: engines would skip it."""

    def transition(self, initiator, responder) -> TransitionResult:
        if initiator.value == 1 and responder.value == 0:
            return TransitionResult(_Bit(1), _Bit(1), False)
        return TransitionResult(initiator, responder, False)


class _SpuriousChangedFlag(_TwoStateBase):
    """Reports changed=True on an identity pair: silence can never fire."""

    def transition(self, initiator, responder) -> TransitionResult:
        if initiator.value == responder.value == 0:
            return TransitionResult(initiator, responder, True)
        return TransitionResult(initiator, responder, False)


class _Nondeterministic(_TwoStateBase):
    """Alternates behaviour per pair between calls: δ is not a pure function.

    Consecutive evaluations of the same mixed pair disagree, so the lint's
    re-evaluation is guaranteed to differ from whatever the compiled table
    recorded, regardless of how many times enumeration probed the pair.
    """

    def __init__(self, num_colors: int = 2) -> None:
        super().__init__(num_colors)
        self._toggle: dict = {}

    def transition(self, initiator, responder) -> TransitionResult:
        key = (initiator, responder)
        flipped = self._toggle[key] = not self._toggle.get(key, False)
        if flipped and initiator.value != responder.value:
            return TransitionResult(_Bit(0), _Bit(0), True)
        return TransitionResult(initiator, responder, False)


def test_unsound_unchanged_flag_is_an_error():
    compiled = compile_protocol(_UnsoundUnchangedFlag(2))
    diagnostics = lint_changed_flags(compiled)
    assert [d.code for d in diagnostics] == ["unsound-unchanged-flag"]
    assert diagnostics[0].severity is Severity.ERROR
    report = verify_protocol(_UnsoundUnchangedFlag(2))
    assert report.has_errors()


def test_spurious_changed_flag_is_a_warning():
    compiled = compile_protocol(_SpuriousChangedFlag(2))
    diagnostics = lint_changed_flags(compiled)
    assert [d.code for d in diagnostics] == ["spurious-changed-flag"]
    assert diagnostics[0].severity is Severity.WARNING


def test_nondeterministic_delta_is_an_error():
    protocol = _Nondeterministic()
    compiled = compile_protocol(protocol)
    diagnostics = lint_determinism(protocol, compiled)
    assert [d.code for d in diagnostics] == ["nondeterministic-delta"]
    assert diagnostics[0].severity is Severity.ERROR


def test_missing_compile_signature_is_a_warning():
    protocol = _SpuriousChangedFlag(2)
    diagnostics = lint_compile_signature(protocol)
    assert [d.code for d in diagnostics] == ["missing-compile-signature"]
    assert diagnostics[0].severity is Severity.WARNING
    report = verify_protocol(protocol)
    assert "missing-compile-signature" in {
        d.code for d in report.diagnostics
    }


@pytest.mark.parametrize("protocol_name", PROTOCOL_NAMES)
def test_every_registered_protocol_overrides_compile_signature(protocol_name):
    """The registry-wide guard: per-instance compile caches silently defeat
    registry-driven sweeps, so every builtin must declare a value identity."""
    protocol = DEFAULT_REGISTRY.create(
        protocol_name, canonical_num_colors(protocol_name)
    )
    assert protocol.compile_signature() is not None
    assert lint_compile_signature(protocol) == []


@pytest.mark.parametrize("protocol_name", PROTOCOL_NAMES)
def test_registry_protocols_produce_no_errors(protocol_name):
    protocol = DEFAULT_REGISTRY.create(
        protocol_name, canonical_num_colors(protocol_name)
    )
    report = verify_protocol(protocol, name=protocol_name)
    assert not report.has_errors(), [
        d.to_dict() for d in report.diagnostics if d.severity >= Severity.ERROR
    ]
