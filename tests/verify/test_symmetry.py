"""Symmetry detection: cyclic groups, full symmetric groups, permuted copies."""

from collections.abc import Iterator
from itertools import permutations
from typing import NamedTuple

import pytest

import repro  # noqa: F401  (populates the default protocol registry)
from repro.compile import compile_protocol
from repro.core.circles import CirclesProtocol
from repro.protocols.base import PopulationProtocol, TransitionResult
from repro.protocols.cancellation_plurality import CancellationPluralityProtocol
from repro.protocols.leader_election import PerColorLeaderElection
from repro.verify.symmetry import SymmetryCertificate, color_symmetries


def detect(protocol, **kwargs) -> SymmetryCertificate:
    return color_symmetries(compile_protocol(protocol), **kwargs)


def test_circles_k3_symmetry_is_the_cyclic_group():
    """Weights are differences mod k, so rotations commute but reflections
    do not (a reflection flips (j-i) mod k to (i-j) mod k)."""
    certificate = detect(CirclesProtocol(3))
    assert certificate.searched
    assert certificate.order == 3
    assert certificate.permutations == ((0, 1, 2), (1, 2, 0), (2, 0, 1))
    assert certificate.generators == ((1, 2, 0),)


def test_circles_k2_symmetry_swaps_colors():
    certificate = detect(CirclesProtocol(2))
    assert certificate.order == 2
    assert (1, 0) in certificate.permutations


@pytest.mark.parametrize(
    "factory", [PerColorLeaderElection, CancellationPluralityProtocol]
)
def test_color_blind_protocols_report_the_full_symmetric_group(factory):
    """Protocols made of identical per-color copies admit every permutation."""
    certificate = detect(factory(3))
    assert certificate.order == 6
    assert len(certificate.permutations) == 6
    # Two generators suffice for S_3 and the greedy selection finds exactly
    # a minimal set.
    assert 1 <= len(certificate.generators) <= 2
    closure = {tuple(range(3))}
    frontier = list(closure)
    while frontier:
        element = frontier.pop()
        for generator in certificate.generators:
            product = tuple(generator[value] for value in element)
            if product not in closure:
                closure.add(product)
                frontier.append(product)
    assert len(closure) == 6


class _PermutedCopy(PopulationProtocol):
    """The base protocol with its colors relabeled by a fixed permutation.

    Inputs are mapped through ``perm`` on the way in and outputs through
    ``perm⁻¹`` on the way out, so this is genuinely "the same protocol with
    the colors renamed" — its symmetry group must be the conjugate
    ``perm · G · perm⁻¹`` of the base group ``G`` (same order).  Sentinel
    outputs outside ``[0, k)`` pass through unchanged.
    """

    name = "permuted-copy"

    def __init__(self, base: PopulationProtocol, perm: tuple[int, ...]):
        super().__init__(base.num_colors)
        self._base = base
        self._perm = perm
        self._inverse = tuple(perm.index(color) for color in range(len(perm)))

    def compile_signature(self):
        return (type(self), self._base.compile_signature(), self._perm)

    def states(self) -> Iterator:
        return self._base.states()

    def initial_state(self, color: int):
        self.validate_color(color)
        return self._base.initial_state(self._perm[color])

    def output(self, state) -> int:
        out = self._base.output(state)
        return self._inverse[out] if out < self.num_colors else out

    def transition(self, initiator, responder) -> TransitionResult:
        return self._base.transition(initiator, responder)


@pytest.mark.parametrize("perm", sorted(permutations(range(3))))
def test_permuted_copies_report_the_full_symmetric_group(perm):
    """Relabeling the colors of a fully symmetric protocol conjugates the
    group — which for the full symmetric group changes nothing."""
    certificate = detect(_PermutedCopy(CancellationPluralityProtocol(3), perm))
    assert certificate.order == 6


def test_permuted_copies_of_circles_conjugate_the_cyclic_group():
    base_order = detect(CirclesProtocol(3)).order
    for perm in sorted(permutations(range(3))):
        certificate = detect(_PermutedCopy(CirclesProtocol(3), perm))
        assert certificate.order == base_order


class _SentinelOutputs(NamedTuple):
    color: int
    active: bool


class _SentinelProtocol(PopulationProtocol):
    """Cancellation with a *sentinel* output ``k`` for cancelled agents.

    Exercises the rule that permutations act as the identity on output
    values outside ``[0, k)`` (like the tie-report's tie sentinel).
    """

    name = "sentinel-cancellation"

    def compile_signature(self):
        return (type(self), self.num_colors)

    def states(self) -> Iterator:
        for color in range(self.num_colors):
            for active in (True, False):
                yield _SentinelOutputs(color, active)

    def initial_state(self, color: int):
        self.validate_color(color)
        return _SentinelOutputs(color, True)

    def output(self, state) -> int:
        return state.color if state.active else self.num_colors

    def transition(self, initiator, responder) -> TransitionResult:
        if (
            initiator.active
            and responder.active
            and initiator.color != responder.color
        ):
            return TransitionResult(
                _SentinelOutputs(initiator.color, False),
                _SentinelOutputs(responder.color, False),
                True,
            )
        return TransitionResult(initiator, responder, False)


def test_sentinel_outputs_stay_fixed_under_permutations():
    certificate = detect(_SentinelProtocol(3))
    assert certificate.order == 6


def test_asymmetric_outputs_break_the_symmetry():
    """Approximate majority's blank outputs color 0, so swapping 0 and 1 is
    *not* output-equivariant even though δ treats the opinions alike."""
    from repro.protocols.approximate_majority import ApproximateMajorityProtocol

    certificate = detect(ApproximateMajorityProtocol(2))
    assert certificate.is_trivial


def test_search_cap_reports_honestly():
    certificate = detect(CirclesProtocol(3), max_colors=2)
    assert not certificate.searched
    assert certificate.order == 1
    assert certificate.generators == ()
