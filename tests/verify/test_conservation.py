"""Conservation-law discovery and the paper's candidate invariants."""

import pytest

import repro  # noqa: F401  (populates the default protocol registry)
from repro.compile import compile_protocol
from repro.core.circles import CirclesProtocol
from repro.core.invariants import braket_count_vectors
from repro.protocols.approximate_majority import ApproximateMajorityProtocol
from repro.protocols.registry import DEFAULT_REGISTRY
from repro.verify.conservation import (
    annihilates,
    check_conservation,
    discover_conservation_laws,
    primitive_integer_vector,
)
from repro.verify.effects import transition_effects
from repro.verify.verifier import canonical_num_colors

PROTOCOL_NAMES = DEFAULT_REGISTRY.names()


@pytest.mark.parametrize("protocol_name", PROTOCOL_NAMES)
def test_discovered_laws_annihilate_every_effect(protocol_name):
    protocol = DEFAULT_REGISTRY.create(
        protocol_name, canonical_num_colors(protocol_name)
    )
    compiled = compile_protocol(protocol)
    effects = transition_effects(compiled)
    laws = discover_conservation_laws(effects, compiled.num_states)
    assert check_conservation(laws, effects)
    # Population size is always in the discovered span's cone of candidates.
    assert annihilates((1,) * compiled.num_states, effects)


@pytest.mark.parametrize("num_colors", [2, 3])
def test_circles_certifies_lemma_3_3(num_colors):
    """Every per-color bra and ket count is a certified linear invariant."""
    compiled = compile_protocol(CirclesProtocol(num_colors))
    effects = transition_effects(compiled)
    candidates = braket_count_vectors(compiled.states, num_colors)
    assert len(candidates) == 2 * num_colors
    for name, vector in candidates.items():
        assert annihilates(vector, effects), f"candidate {name} not conserved"
    # The discovered basis spans at least the 2k bra/ket counts, which have
    # rank 2k-1 together with population size; the null space is no smaller.
    laws = discover_conservation_laws(effects, compiled.num_states)
    assert len(laws) >= 2 * num_colors - 1


def test_approximate_majority_conserves_only_population_size():
    compiled = compile_protocol(ApproximateMajorityProtocol(2))
    effects = transition_effects(compiled)
    laws = discover_conservation_laws(effects, compiled.num_states)
    assert len(laws) == 1
    assert annihilates((1,) * compiled.num_states, effects)
    # Opinion counts are *not* conserved (that is the whole point of the
    # protocol), so the indicator of an opinion state must fail.
    blank_index = [
        code
        for code, state in enumerate(compiled.states)
        if state.opinion is None
    ]
    assert len(blank_index) == 1
    indicator = tuple(
        1 if code == blank_index[0] else 0 for code in range(compiled.num_states)
    )
    assert not annihilates(indicator, effects)


def test_primitive_integer_vector_normalizes():
    from fractions import Fraction

    assert primitive_integer_vector(
        (Fraction(1, 2), Fraction(-1, 3), Fraction(0))
    ) == (3, -2, 0)
    assert primitive_integer_vector(
        (Fraction(-2), Fraction(4), Fraction(-6))
    ) == (1, -2, 3)
    assert primitive_integer_vector((Fraction(0), Fraction(0))) == (0, 0)


def test_law_rendering_is_compact():
    compiled = compile_protocol(CirclesProtocol(2))
    effects = transition_effects(compiled)
    laws = discover_conservation_laws(effects, compiled.num_states)
    names = [str(state) for state in compiled.states]
    for law in laws:
        rendered = law.render(names)
        assert rendered and "#[" in rendered
