"""SweepManifest: progress ledger semantics and atomic persistence."""

import json

import pytest

from repro.api.spec import SweepSpec
from repro.service.manifest import SweepManifest
from repro.service.store import ResultStore


def small_sweep(seed: int = 7) -> SweepSpec:
    return SweepSpec(
        protocols=("circles",), populations=(8,), ks=(2,), engines=("batch",),
        trials=3, seed=seed, max_steps_quadratic=200,
    )


class TestManifestSemantics:
    def test_progress_lifecycle(self):
        manifest = SweepManifest(sweep_sha="s" * 64, name="demo", run_shas=["a", "b", "c"])
        assert manifest.total == 3
        assert manifest.pending() == [0, 1, 2]
        assert not manifest.complete
        manifest.mark_done(1)
        assert manifest.pending() == [0, 2]
        manifest.mark_pending(1)
        assert manifest.pending() == [0, 1, 2]
        for index in range(3):
            manifest.mark_done(index)
        assert manifest.complete
        assert manifest.progress()["done"] == 3

    def test_index_bounds_are_checked(self):
        manifest = SweepManifest(sweep_sha="s", name="", run_shas=["a"])
        with pytest.raises(IndexError):
            manifest.mark_done(1)
        with pytest.raises(IndexError):
            manifest.mark_pending(-1)

    def test_json_round_trip(self):
        manifest = SweepManifest(sweep_sha="s" * 64, name="demo", run_shas=["a", "b"])
        manifest.mark_done(1)
        clone = SweepManifest.from_json(manifest.to_json())
        assert clone.sweep_sha == manifest.sweep_sha
        assert list(clone.run_shas) == list(manifest.run_shas)
        assert clone.done == {1}

    def test_save_is_atomic_and_loadable(self, tmp_path):
        manifest = SweepManifest(sweep_sha="s" * 64, name="demo", run_shas=["a", "b"])
        path = tmp_path / "deep" / "manifest.json"
        manifest.save(path)
        assert SweepManifest.load(path).to_dict() == manifest.to_dict()
        # No temp droppings next to the target.
        assert [p.name for p in path.parent.iterdir()] == [path.name]


class TestStoreManifests:
    def test_open_manifest_creates_then_resumes(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep = small_sweep()
        specs = sweep.expand()
        manifest = store.open_manifest(sweep, specs)
        assert manifest.total == len(specs)
        assert manifest.sweep_sha == sweep.sha()
        manifest.mark_done(0)
        store.save_manifest(manifest)

        resumed = store.open_manifest(sweep, specs)
        assert resumed.done == {0}

    def test_stale_manifest_is_discarded(self, tmp_path):
        """Same path, different run SHAs -> fresh manifest, not a wrong resume."""
        store = ResultStore(tmp_path)
        sweep = small_sweep()
        specs = sweep.expand()
        manifest = store.open_manifest(sweep, specs)
        manifest.mark_done(0)
        # Corrupt the ledger: rewrite it with foreign run SHAs.
        manifest.run_shas = ("x", "y", "z")
        store.save_manifest(manifest)

        fresh = store.open_manifest(sweep, specs)
        assert fresh.done == set()
        assert list(fresh.run_shas) == [spec.sha() for spec in specs]

    def test_unreadable_manifest_is_recreated(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep = small_sweep()
        specs = sweep.expand()
        store.manifest_path(sweep.sha()).write_text("{not json")
        fresh = store.open_manifest(sweep, specs)
        assert fresh.done == set()

    def test_manifests_listing_skips_broken_files(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep = small_sweep()
        store.save_manifest(store.open_manifest(sweep, sweep.expand()))
        (store.manifests_dir / "broken.json").write_text("{not json")
        listed = store.manifests()
        assert len(listed) == 1
        assert listed[0].sweep_sha == sweep.sha()

    def test_manifest_file_is_valid_json_on_disk(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep = small_sweep()
        manifest = store.open_manifest(sweep, sweep.expand())
        store.save_manifest(manifest)
        on_disk = json.loads(store.manifest_path(sweep.sha()).read_text())
        assert on_disk["sweep_sha"] == sweep.sha()
        assert on_disk["done"] == []
