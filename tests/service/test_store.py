"""Cache-correctness suite for the content-addressed result store (satellite).

The store's contract: identical specs are served from cache bit-identically,
*any* spec difference misses, and corruption is detected and recomputed —
never served.
"""

from dataclasses import replace

import pytest

from repro.api.executor import SerialExecutor, SweepRunner, execute_run
from repro.api.records import RunRecord
from repro.api.spec import RunSpec, SweepSpec, canonical_json, sha_of
from repro.service.store import ResultStore


def small_sweep(seed: int = 7, trials: int = 2) -> SweepSpec:
    return SweepSpec(
        protocols=("circles",),
        populations=(8, 12),
        ks=(2,),
        engines=("batch",),
        trials=trials,
        seed=seed,
        max_steps_quadratic=200,
    )


class CountingExecutor:
    """Serial execution that counts how many specs were actually simulated."""

    def __init__(self) -> None:
        self.executed = 0

    def map(self, specs):
        self.executed += len(specs)
        return SerialExecutor().map(specs)


class TestContentAddressing:
    def test_sha_is_deterministic_and_canonical(self):
        spec = RunSpec(protocol="circles", n=8, k=2, seed=3)
        assert spec.sha() == RunSpec.from_json(spec.to_json()).sha()
        assert spec.sha() == sha_of(spec.to_dict())
        assert len(spec.sha()) == 64

    def test_canonical_json_sorts_keys_recursively(self):
        a = canonical_json({"b": 1, "a": {"d": 2, "c": 3}})
        b = canonical_json({"a": {"c": 3, "d": 2}, "b": 1})
        assert a == b

    @pytest.mark.parametrize(
        "variation",
        [
            {"seed": 999},
            {"workload_seed": 999},
            {"observers": ("energy",)},
            {"compiled": False},
            {"engine": "configuration"},
            {"n": 10},
            {"max_steps": 123},
        ],
    )
    def test_any_field_difference_changes_the_sha(self, variation):
        base = RunSpec(protocol="circles", n=8, k=2, seed=3)
        assert replace(base, **variation).sha() != base.sha()

    def test_sweep_sha_changes_with_any_axis(self):
        base = small_sweep()
        assert small_sweep(seed=8).sha() != base.sha()
        assert replace(base, trials=3).sha() != base.sha()


class TestCacheHits:
    def test_same_spec_twice_hits_the_cache_bit_identically(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep = small_sweep()
        counting = CountingExecutor()
        cold = SweepRunner(store=store, executor=counting).run(sweep)
        assert counting.executed == len(sweep)

        warm = SweepRunner(store=store, executor=counting).run(sweep)
        assert counting.executed == len(sweep)  # nothing re-simulated
        assert warm.records == cold.records
        # Bit-identical, not merely equal: the canonical serializations match.
        assert [canonical_json(r.to_dict()) for r in warm.records] == [
            canonical_json(r.to_dict()) for r in cold.records
        ]
        assert store.hits == len(sweep)

    def test_cache_survives_process_restart(self, tmp_path):
        """A fresh store object over the same directory reloads the shards."""
        sweep = small_sweep()
        cold = SweepRunner(store=ResultStore(tmp_path)).run(sweep)
        counting = CountingExecutor()
        warm = SweepRunner(store=ResultStore(tmp_path), executor=counting).run(sweep)
        assert counting.executed == 0
        assert warm.records == cold.records

    def test_differing_specs_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        base = RunSpec(protocol="circles", n=8, k=2, engine="batch", seed=3, max_steps=2_000)
        store.put(base, execute_run(base))
        assert store.get(base) is not None
        for variation in ({"seed": 4}, {"observers": ("energy",)}, {"compiled": False}):
            assert store.get(replace(base, **variation)) is None

    def test_get_returns_equal_record_not_same_object(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = RunSpec(protocol="circles", n=8, k=2, engine="batch", seed=3, max_steps=2_000)
        record = execute_run(spec)
        store.put(spec, record)
        served = store.get(spec)
        assert served == record
        assert isinstance(served, RunRecord)


class TestCorruptionDetection:
    def _store_one(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = RunSpec(protocol="circles", n=8, k=2, engine="batch", seed=3, max_steps=2_000)
        record = execute_run(spec)
        store.put(spec, record)
        return spec, record

    def _shard_file(self, tmp_path):
        [shard] = list((tmp_path / "shards").glob("*.jsonl"))
        return shard

    def test_bitflip_is_detected_and_recomputed_not_served(self, tmp_path):
        spec, record = self._store_one(tmp_path)
        shard = self._shard_file(tmp_path)
        text = shard.read_text()
        # Flip one digit inside the stored record payload: the line still
        # parses as JSON but no longer matches its checksum.
        corrupted = text.replace('"steps": ', '"steps": 9', 1)
        assert corrupted != text
        shard.write_text(corrupted)

        fresh = ResultStore(tmp_path)
        assert fresh.get(spec) is None  # a miss, not a wrong record
        assert fresh.corrupt == 1

        # The runner recomputes and the recomputed record matches the original.
        recomputed = execute_run(spec)
        fresh.put(spec, recomputed)
        assert fresh.get(spec) == record

    def test_torn_final_line_is_skipped(self, tmp_path):
        spec, _record = self._store_one(tmp_path)
        shard = self._shard_file(tmp_path)
        text = shard.read_text()
        shard.write_text(text[: len(text) // 2])  # crash mid-append

        fresh = ResultStore(tmp_path)
        assert fresh.get(spec) is None
        assert fresh.corrupt == 1

    def test_garbage_shard_lines_are_counted_and_ignored(self, tmp_path):
        spec, record = self._store_one(tmp_path)
        shard = self._shard_file(tmp_path)
        shard.write_text("not json at all\n" + shard.read_text())

        fresh = ResultStore(tmp_path)
        assert fresh.get(spec) == record  # the valid line still serves
        assert fresh.corrupt == 1


class TestStoreStats:
    def test_hit_rate_and_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = RunSpec(protocol="circles", n=8, k=2, engine="batch", seed=3, max_steps=2_000)
        assert store.hit_rate is None
        assert store.get(spec) is None
        store.put(spec, execute_run(spec))
        assert store.get(spec) is not None
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["stored"] == 1
        assert stats["hit_rate"] == 0.5
        assert spec in store
