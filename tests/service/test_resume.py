"""Kill-and-resume integration (satellite): a sweep interrupted mid-flight and
restarted from its manifest finishes only the remainder, and the merged
result is record-identical to an uninterrupted run."""

import dataclasses

import pytest

from repro.api.executor import SerialExecutor, SweepRunner
from repro.api.spec import SweepSpec
from repro.api.stopping import StoppingRule
from repro.service.store import ResultStore


def sweep_spec() -> SweepSpec:
    return SweepSpec(
        name="resume-demo",
        protocols=("circles",),
        populations=(8, 10, 12),
        ks=(2,),
        engines=("batch",),
        trials=2,
        seed=17,
        max_steps_quadratic=200,
    )


def adaptive_sweep_spec() -> SweepSpec:
    """Two all-correct cells that stop at 4 trials each (Wilson half-width
    at p̂=1 is ≈0.329 after 2 trials, ≈0.245 ≤ 0.3 after 4)."""
    return SweepSpec(
        name="resume-adaptive-demo",
        protocols=("circles",),
        populations=(8, 10),
        ks=(2,),
        engines=("batch",),
        trials="auto",
        stopping=StoppingRule(
            metric="correct",
            proportion=True,
            target_half_width=0.3,
            min_trials=2,
            batch_size=2,
            max_trials=8,
        ),
        seed=23,
        max_steps_quadratic=200,
    )


class CountingExecutor:
    def __init__(self) -> None:
        self.executed = 0

    def map(self, specs):
        self.executed += len(specs)
        return SerialExecutor().map(specs)


class KillAfter:
    """Executor that simulates a crash after ``survive`` completed chunks."""

    def __init__(self, survive: int) -> None:
        self.survive = survive
        self.calls = 0

    def map(self, specs):
        if self.calls >= self.survive:
            raise KeyboardInterrupt("simulated kill mid-sweep")
        self.calls += 1
        return SerialExecutor().map(specs)


class TestKillAndResume:
    def test_resume_executes_only_the_remainder(self, tmp_path):
        sweep = sweep_spec()
        total = len(sweep)
        assert total == 6

        # The uninterrupted reference run, no store involved.
        reference = SweepRunner().run(sweep)

        # First attempt: chunk_size=1 -> a checkpoint after every run; the
        # executor dies after 2 completed runs, mid-sweep.
        store = ResultStore(tmp_path)
        runner = SweepRunner(store=store, executor=KillAfter(survive=2), chunk_size=1)
        with pytest.raises(KeyboardInterrupt):
            runner.run(sweep)

        # The manifest checkpoint recorded exactly the completed prefix.
        manifest = store.open_manifest(sweep, sweep.expand())
        assert len(manifest.done) == 2
        assert not manifest.complete

        # Restart on a fresh store object over the same directory (a new
        # process would see exactly this state).
        store2 = ResultStore(tmp_path)
        counting = CountingExecutor()
        resumed = SweepRunner(store=store2, executor=counting).run(sweep)
        assert counting.executed == total - 2  # only the remainder ran
        assert store2.hits == 2  # the completed prefix came from the cache

        # The merged result is record-identical to the uninterrupted run.
        assert resumed.records == reference.records
        assert [r.to_dict() for r in resumed.records] == [
            r.to_dict() for r in reference.records
        ]

        # And the manifest now reads complete.
        final = store2.open_manifest(sweep, sweep.expand())
        assert final.complete

    def test_interrupt_during_first_chunk_loses_nothing_stored(self, tmp_path):
        """Killed before any chunk completes: resume recomputes everything,
        still matching the reference."""
        sweep = sweep_spec()
        store = ResultStore(tmp_path)
        runner = SweepRunner(store=store, executor=KillAfter(survive=0), chunk_size=2)
        with pytest.raises(KeyboardInterrupt):
            runner.run(sweep)
        assert store.stored == 0

        resumed = SweepRunner(store=ResultStore(tmp_path)).run(sweep)
        assert resumed.records == SweepRunner().run(sweep).records

    def test_double_resume_is_idempotent(self, tmp_path):
        """Resuming an already-complete sweep executes nothing at all."""
        sweep = sweep_spec()
        SweepRunner(store=ResultStore(tmp_path)).run(sweep)

        counting = CountingExecutor()
        again = SweepRunner(store=ResultStore(tmp_path), executor=counting).run(sweep)
        assert counting.executed == 0
        assert again.records == SweepRunner().run(sweep).records

    def test_resume_streams_cached_then_fresh(self, tmp_path):
        """run_iter marks resumed-prefix records as cached, remainder as fresh."""
        sweep = sweep_spec()
        store = ResultStore(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            SweepRunner(store=store, executor=KillAfter(survive=3), chunk_size=1).run(sweep)

        events = list(SweepRunner(store=ResultStore(tmp_path)).run_iter(sweep))
        assert len(events) == len(sweep)
        cached_flags = [cached for _index, _record, cached in events]
        assert cached_flags.count(True) == 3
        assert sorted(index for index, _r, _c in events) == list(range(len(sweep)))


class TestAdaptiveKillAndResume:
    """The sequential-sampling layer composes with the store/manifest
    checkpointing: a killed adaptive sweep resumes from the checkpointed
    trial count and finishes bit-identical to an uninterrupted run."""

    def test_resumed_cell_continues_from_checkpointed_trials(self, tmp_path):
        sweep = adaptive_sweep_spec()
        reference = SweepRunner().run(sweep)
        total = len(reference.records)
        assert total == 8  # 2 cells x 4 trials, well under the 16-trial budget

        # chunk_size=1 with a map-only executor -> a store checkpoint after
        # every trial; the crash lands mid-way through the first round.
        store = ResultStore(tmp_path)
        killed = SweepRunner(store=store, executor=KillAfter(survive=3), chunk_size=1)
        with pytest.raises(KeyboardInterrupt):
            killed.run(sweep)
        assert store.stored == 3

        store2 = ResultStore(tmp_path)
        counting = CountingExecutor()
        resumed = SweepRunner(store=store2, executor=counting).run(sweep)
        # Only the remaining trials ran; the checkpointed prefix was served.
        assert counting.executed == total - 3
        assert store2.hits == 3
        assert resumed.records == reference.records
        assert resumed.extras["stopping"] == reference.extras["stopping"]

    def test_adaptive_double_resume_executes_nothing(self, tmp_path):
        sweep = adaptive_sweep_spec()
        SweepRunner(store=ResultStore(tmp_path)).run(sweep)
        counting = CountingExecutor()
        again = SweepRunner(store=ResultStore(tmp_path), executor=counting).run(sweep)
        assert counting.executed == 0
        assert again.records == SweepRunner().run(sweep).records

    def test_adaptive_sweep_reuses_fixed_sweep_store_entries(self, tmp_path):
        """Prefix identity through the store: trials run by a fixed trials=4
        sweep are the exact entries the auto sweep would execute, so on a
        shared store the adaptive pass is pure cache hits."""
        sweep = adaptive_sweep_spec()
        fixed = dataclasses.replace(sweep, trials=4, stopping=None)
        SweepRunner(store=ResultStore(tmp_path)).run(fixed)

        store = ResultStore(tmp_path)
        counting = CountingExecutor()
        auto = SweepRunner(store=store, executor=counting).run(sweep)
        assert counting.executed == 0
        assert store.hits == len(auto.records) == 8
