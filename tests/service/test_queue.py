"""The asyncio work-stealing executor: identity, retry, timeout, cancellation."""

import threading
import time

import pytest

from repro.api.executor import (
    SerialExecutor,
    SweepRunner,
    available_executors,
    build_executor,
    register_runner,
)
from repro.api.records import RunRecord
from repro.api.spec import RunSpec, SweepSpec
from repro.service.queue import AsyncExecutor, RunFailed


def toy_record(spec: RunSpec) -> RunRecord:
    return RunRecord(
        spec=spec, seed=spec.seed, protocol_name=spec.protocol, num_agents=spec.n,
        num_colors=spec.k, engine=spec.engine, scheduler_name="none", converged=True,
        correct=True, steps=0, interactions_changed=0,
    )


#: Shared state for the flaky/sleepy runners (threads share the process).
_FLAKY = {"failures_left": 0, "attempts": 0, "lock": threading.Lock()}


def _flaky_runner(spec: RunSpec) -> RunRecord:
    with _FLAKY["lock"]:
        _FLAKY["attempts"] += 1
        if _FLAKY["failures_left"] > 0:
            _FLAKY["failures_left"] -= 1
            raise RuntimeError("transient worker failure (test)")
    return toy_record(spec)


def _sleepy_runner(spec: RunSpec) -> RunRecord:
    time.sleep(0.4)
    return toy_record(spec)


register_runner("service-test-flaky", _flaky_runner, overwrite=True)
register_runner("service-test-sleepy", _sleepy_runner, overwrite=True)


class TestRecordIdentity:
    """Acceptance: asyncio is record-identical to serial and multiprocessing."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return SweepSpec(
            protocols=("circles", "cancellation-plurality"),
            populations=(8, 12),
            ks=(3,),
            engines=("batch",),
            trials=2,
            seed=31,
            max_steps_quadratic=200,
        )

    @pytest.fixture(scope="class")
    def serial_records(self, sweep):
        return SerialExecutor().map(sweep.expand())

    @pytest.mark.parametrize("executor", ["serial", "multiprocessing", "asyncio"])
    def test_executor_agreement(self, executor, sweep, serial_records):
        records = build_executor(executor, workers=3).map(sweep.expand())
        assert records == serial_records

    def test_asyncio_through_sweep_runner_by_name(self, sweep, serial_records):
        result = SweepRunner(executor="asyncio", workers=2).run(sweep)
        assert result.records == serial_records

    def test_single_worker_and_empty_input(self):
        assert AsyncExecutor(1).map([]) == []
        spec = RunSpec(protocol="circles", n=8, k=2, engine="batch", seed=3,
                       max_steps=2_000)
        assert AsyncExecutor(1).map([spec]) == SerialExecutor().map([spec])

    def test_more_workers_than_specs(self):
        spec = RunSpec(protocol="circles", n=8, k=2, engine="batch", seed=3,
                       max_steps=2_000)
        assert AsyncExecutor(16).map([spec, spec]) == SerialExecutor().map([spec, spec])


class TestRetryAndBackoff:
    def test_transient_failures_are_retried(self):
        specs = [RunSpec(protocol="circles", n=8, k=2, seed=i,
                         runner="service-test-flaky") for i in range(4)]
        with _FLAKY["lock"]:
            _FLAKY["failures_left"] = 3
            _FLAKY["attempts"] = 0
        # retries=3: even if one unlucky spec absorbs all three failures it
        # still has an attempt left, so the test is schedule-independent.
        records = AsyncExecutor(2, retries=3, backoff=0.001).map(specs)
        assert [record.spec for record in records] == specs
        assert _FLAKY["attempts"] == len(specs) + 3  # each failure retried

    def test_retry_budget_is_bounded(self):
        spec = RunSpec(protocol="circles", n=8, k=2, seed=1, runner="service-test-flaky")
        with _FLAKY["lock"]:
            _FLAKY["failures_left"] = 10**9
            _FLAKY["attempts"] = 0
        with pytest.raises(RunFailed) as excinfo:
            AsyncExecutor(2, retries=2, backoff=0.001).map([spec])
        with _FLAKY["lock"]:
            _FLAKY["failures_left"] = 0
        assert excinfo.value.attempts == 3  # 1 attempt + 2 retries
        assert excinfo.value.spec == spec
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_failure_cancels_the_rest_gracefully(self):
        """A terminal failure surfaces promptly; map never hangs."""
        bad = RunSpec(protocol="circles", n=8, k=2, seed=1, runner="service-test-flaky")
        slow = [RunSpec(protocol="circles", n=8, k=2, seed=i,
                        runner="service-test-sleepy") for i in range(2, 6)]
        with _FLAKY["lock"]:
            _FLAKY["failures_left"] = 10**9
        try:
            with pytest.raises(RunFailed):
                AsyncExecutor(2, retries=0, backoff=0.0).map([bad] + slow)
        finally:
            with _FLAKY["lock"]:
                _FLAKY["failures_left"] = 0


class TestTimeout:
    def test_run_exceeding_timeout_fails_after_retries(self):
        spec = RunSpec(protocol="circles", n=8, k=2, seed=1, runner="service-test-sleepy")
        start = time.perf_counter()
        with pytest.raises(RunFailed) as excinfo:
            AsyncExecutor(1, timeout=0.05, retries=1, backoff=0.001).map([spec])
        elapsed = time.perf_counter() - start
        assert isinstance(excinfo.value.__cause__, TimeoutError)
        assert excinfo.value.attempts == 2
        assert elapsed < 5.0

    def test_fast_run_is_unaffected_by_timeout(self):
        spec = RunSpec(protocol="circles", n=8, k=2, engine="batch", seed=3,
                       max_steps=2_000)
        records = AsyncExecutor(1, timeout=30.0).map([spec])
        assert records == SerialExecutor().map([spec])


class TestValidationAndRegistry:
    def test_asyncio_is_registered(self):
        assert "asyncio" in available_executors()
        executor = build_executor("asyncio", workers=2, timeout=1.0, retries=0)
        assert isinstance(executor, AsyncExecutor)
        assert (executor.workers, executor.timeout, executor.retries) == (2, 1.0, 0)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_workers_must_be_positive(self, bad):
        with pytest.raises(ValueError, match="workers must be a positive"):
            AsyncExecutor(bad)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="timeout must be positive"):
            AsyncExecutor(1, timeout=0)
        with pytest.raises(ValueError, match="retries must be non-negative"):
            AsyncExecutor(1, retries=-1)
        with pytest.raises(ValueError, match="backoff must be non-negative"):
            AsyncExecutor(1, backoff=-0.1)
