"""The HTTP sweep service end to end: stream, cache, status, submit CLI.

Each test class boots a real ``ThreadingHTTPServer`` on an ephemeral port in
a daemon thread and talks to it with ``urllib`` — the same stack the submit
CLI uses — so the close-delimited streaming behavior is exercised for real.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api.executor import execute_run
from repro.api.records import RunRecord
from repro.api.spec import RunSpec, SweepSpec
from repro.service.serve import SweepService, serve
from repro.service.store import ResultStore
from repro.service.submit import main as submit_main


def small_sweep() -> SweepSpec:
    return SweepSpec(
        name="serve-demo",
        protocols=("circles",),
        populations=(8, 10),
        ks=(2,),
        engines=("batch",),
        trials=2,
        seed=23,
        max_steps_quadratic=200,
    )


@pytest.fixture()
def service(tmp_path):
    return SweepService(ResultStore(tmp_path / "store"), workers=2, retries=1)


@pytest.fixture()
def server(service):
    httpd = serve(service, "127.0.0.1", 0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{httpd.server_address[1]}"
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)


def post_lines(url: str, route: str, payload: dict) -> list[dict]:
    request = urllib.request.Request(
        url + route,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return [json.loads(line) for line in response if line.strip()]


def get_json(url: str, route: str) -> dict:
    with urllib.request.urlopen(url + route) as response:
        return json.loads(response.read().decode("utf-8"))


class TestSweepStreaming:
    def test_submit_then_resubmit_is_pure_cache(self, server, service):
        sweep = small_sweep()
        first = post_lines(server, "/sweep", sweep.to_dict())
        assert len(first) == len(sweep)
        assert all(not envelope["cached"] for envelope in first)
        assert sorted(envelope["index"] for envelope in first) == list(range(len(sweep)))

        second = post_lines(server, "/sweep", sweep.to_dict())
        assert len(second) == len(sweep)
        assert all(envelope["cached"] for envelope in second)

        # Record payloads are identical between the computed and cached pass.
        by_index = lambda envs: {e["index"]: e["record"] for e in envs}  # noqa: E731
        assert by_index(first) == by_index(second)

        # Envelopes decode to real records whose spec SHA matches the envelope.
        record = RunRecord.from_dict(first[0]["record"])
        assert record.spec.sha() == first[0]["sha"]

    def test_status_reflects_cache_and_manifests(self, server, service):
        sweep = small_sweep()
        post_lines(server, "/sweep", sweep.to_dict())
        status = get_json(server, "/status")
        assert status["queue_depth"] == 0
        assert status["active_sweeps"] == {}
        assert status["completed_sweeps"] == 1
        assert status["completed_runs"] == len(sweep)
        assert status["cache"]["stored"] == len(sweep)
        [progress] = status["sweeps"]
        assert progress["done"] == progress["total"] == len(sweep)

        post_lines(server, "/sweep", sweep.to_dict())
        status = get_json(server, "/status")
        assert status["cache"]["hits"] >= len(sweep)

    def test_single_run_route(self, server, service):
        spec = RunSpec(protocol="circles", n=8, k=2, engine="batch", seed=3,
                       max_steps=2_000)
        [envelope] = post_lines(server, "/run", spec.to_dict())
        assert not envelope["cached"]
        assert RunRecord.from_dict(envelope["record"]) == execute_run(spec)

        [again] = post_lines(server, "/run", spec.to_dict())
        assert again["cached"]
        assert again["record"] == envelope["record"]


class TestErrorHandling:
    def test_bad_spec_is_a_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_lines(server, "/sweep", {"definitely": "not a sweep"})
        assert excinfo.value.code == 400
        assert "bad spec" in json.loads(excinfo.value.read().decode("utf-8"))["error"]

    def test_unknown_routes_are_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/nope")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_lines(server, "/nope", {})
        assert excinfo.value.code == 404

    def test_runtime_failure_is_reported_in_band(self, server):
        """An unknown protocol passes spec parsing but fails at execution;
        the error arrives as a JSON line inside the 200 stream."""
        spec = RunSpec(protocol="no-such-protocol", n=8, k=2, seed=3)
        lines = post_lines(server, "/run", spec.to_dict())
        assert any("error" in line for line in lines)


class TestSubmitCLI:
    def test_sweep_round_trip_and_output_file(self, server, tmp_path, capsys):
        sweep = small_sweep()
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(sweep.to_json())
        out_path = tmp_path / "records.jsonl"

        code = submit_main([str(spec_path), "--url", server, "-o", str(out_path)])
        assert code == 0
        captured = capsys.readouterr()
        stdout_lines = [json.loads(l) for l in captured.out.splitlines() if l.strip()]
        assert len(stdout_lines) == len(sweep)
        assert f"{len(sweep)} record(s)" in captured.err
        saved = [json.loads(l) for l in out_path.read_text().splitlines()]
        assert saved == stdout_lines

        # Resubmit quietly: everything cached, summary only.
        code = submit_main([str(spec_path), "--url", server, "-q"])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert f"({len(sweep)} cached, 0 computed)" in captured.err

    def test_run_spec_autodetected(self, server, tmp_path, capsys):
        spec = RunSpec(protocol="circles", n=8, k=2, engine="batch", seed=3,
                       max_steps=2_000)
        spec_path = tmp_path / "run.json"
        spec_path.write_text(spec.to_json())
        assert submit_main([str(spec_path), "--url", server]) == 0
        captured = capsys.readouterr()
        [envelope] = [json.loads(l) for l in captured.out.splitlines() if l.strip()]
        assert envelope["sha"] == spec.sha()

    def test_in_stream_error_exits_nonzero(self, server, tmp_path, capsys):
        spec = RunSpec(protocol="no-such-protocol", n=8, k=2, seed=3)
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(spec.to_json())
        assert submit_main([str(spec_path), "--run", "--url", server]) == 1
        assert "server error" in capsys.readouterr().err


class TestServiceWithoutStore:
    def test_storeless_service_recomputes(self):
        service = SweepService(None, workers=1, executor="serial")
        sweep = small_sweep()
        events = list(service.stream_sweep(sweep))
        assert len(events) == len(sweep)
        assert all(not cached for _i, _r, cached in events)
        status = service.status()
        assert status["cache"] is None
        assert status["completed_runs"] == len(sweep)
