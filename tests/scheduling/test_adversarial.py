"""Tests for the adversarial schedulers and the fairness checker."""

import pytest

from repro.core.circles import CirclesProtocol
from repro.scheduling.adversarial import (
    GreedyStallScheduler,
    IsolationScheduler,
    SingleColorScheduler,
)
from repro.scheduling.fairness import collect_pairs, covers_all_pairs, fairness_report
from repro.simulation.population import Population


class TestGreedyStall:
    def _scheduler(self, n: int, patience: int = 4, seed: int = 0) -> GreedyStallScheduler:
        protocol = CirclesProtocol(3)
        return GreedyStallScheduler(
            n,
            transition_changes=lambda a, b: protocol.transition(a, b).changed,
            seed=seed,
            patience=patience,
        )

    def test_patience_must_be_positive(self):
        with pytest.raises(ValueError):
            self._scheduler(4, patience=0)

    def test_prefers_null_interactions(self):
        protocol = CirclesProtocol(3)
        population = Population.from_colors(protocol, [0, 0, 0, 1])
        scheduler = self._scheduler(4, patience=10)
        pair = scheduler.next_pair(0, population.states())
        a, b = pair
        # With patience available, the adversary picks a pair whose interaction is a no-op.
        assert not protocol.transition(population[a], population[b]).changed

    def test_backlog_forces_progress_after_patience(self):
        protocol = CirclesProtocol(3)
        states = [protocol.initial_state(0)] * 3 + [protocol.initial_state(1)]
        scheduler = self._scheduler(4, patience=2)
        pairs = [scheduler.next_pair(step, states) for step in range(12)]
        # Despite stalling, the deterministic backlog keeps injecting pairs in
        # round-robin order, so the schedule still covers many distinct pairs.
        assert len(set(pairs)) >= 4

    def test_remains_weakly_fair_on_static_population(self):
        scheduler = self._scheduler(4, patience=1, seed=2)
        pairs = collect_pairs(scheduler, 200, states=[CirclesProtocol(3).initial_state(0)] * 4)
        assert covers_all_pairs(pairs, 4)

    def test_declared_fairness_flags(self):
        assert self._scheduler(4).is_weakly_fair
        assert not IsolationScheduler(4, [0]).is_weakly_fair
        assert not SingleColorScheduler(4, [(0, 1)]).is_weakly_fair


class TestIsolation:
    def test_isolated_agents_never_appear(self):
        scheduler = IsolationScheduler(6, isolated={0, 5}, seed=1)
        pairs = collect_pairs(scheduler, 300)
        used = {index for pair in pairs for index in pair}
        assert used <= {1, 2, 3, 4}

    def test_needs_two_active_agents(self):
        with pytest.raises(ValueError):
            IsolationScheduler(3, isolated={0, 1})

    def test_rejects_out_of_range_agent(self):
        with pytest.raises(ValueError):
            IsolationScheduler(3, isolated={7})

    def test_coverage_is_incomplete(self):
        scheduler = IsolationScheduler(5, isolated={4}, seed=2)
        report = fairness_report(collect_pairs(scheduler, 400), 5)
        assert not report.complete
        assert all(4 in pair for pair in report.missing_pairs)


class TestSingleColor:
    def test_cycles_through_given_pairs(self):
        scheduler = SingleColorScheduler(4, [(0, 1), (2, 3)])
        pairs = collect_pairs(scheduler, 4)
        assert pairs == [(0, 1), (2, 3), (0, 1), (2, 3)]

    def test_rejects_empty_and_invalid_pairs(self):
        with pytest.raises(ValueError):
            SingleColorScheduler(4, [])
        with pytest.raises(ValueError):
            SingleColorScheduler(4, [(1, 1)])
        with pytest.raises(ValueError):
            SingleColorScheduler(4, [(0, 9)])


class TestFairnessReport:
    def test_complete_report(self):
        from repro.scheduling.round_robin import RoundRobinScheduler

        scheduler = RoundRobinScheduler(3)
        report = fairness_report(collect_pairs(scheduler, scheduler.cycle_length * 2), 3)
        assert report.complete
        assert report.coverage == 1.0
        assert report.min_pair_count == 2
        assert report.max_pair_count == 2

    def test_partial_report(self):
        report = fairness_report([(0, 1), (0, 1)], 3)
        assert report.distinct_pairs_seen == 1
        assert report.total_pairs == 6
        assert 0 < report.coverage < 1
        assert not report.complete
