"""Tests for the fair schedulers (uniform random, round-robin, permutation)."""

import pytest

from repro.scheduling.base import Scheduler, all_ordered_pairs
from repro.scheduling.fairness import collect_pairs, covers_all_pairs
from repro.scheduling.permutation import RandomPermutationScheduler
from repro.scheduling.random_uniform import UniformRandomScheduler
from repro.scheduling.round_robin import RoundRobinScheduler


class TestBase:
    def test_all_ordered_pairs(self):
        pairs = all_ordered_pairs(3)
        assert len(pairs) == 6
        assert (0, 0) not in pairs
        assert (2, 1) in pairs

    def test_requires_two_agents(self):
        with pytest.raises(ValueError):
            UniformRandomScheduler(1)

    def test_describe(self):
        info = RoundRobinScheduler(4).describe()
        assert info == {"name": "round-robin", "num_agents": 4, "weakly_fair": True}


class TestUniformRandom:
    def test_pairs_valid(self):
        scheduler = UniformRandomScheduler(5, seed=1)
        for step in range(100):
            a, b = scheduler.next_pair(step, [None] * 5)
            assert a != b
            assert 0 <= a < 5 and 0 <= b < 5

    def test_deterministic_under_seed(self):
        first = collect_pairs(UniformRandomScheduler(6, seed=9), 50)
        second = collect_pairs(UniformRandomScheduler(6, seed=9), 50)
        assert first == second

    def test_eventually_covers_all_pairs(self):
        pairs = collect_pairs(UniformRandomScheduler(4, seed=3), 600)
        assert covers_all_pairs(pairs, 4)


class TestRoundRobin:
    def test_cycle_contains_every_pair_exactly_once(self):
        scheduler = RoundRobinScheduler(4)
        pairs = collect_pairs(scheduler, scheduler.cycle_length)
        assert sorted(pairs) == sorted(all_ordered_pairs(4))

    def test_cycle_repeats(self):
        scheduler = RoundRobinScheduler(3)
        first_cycle = collect_pairs(scheduler, scheduler.cycle_length)
        second_cycle = collect_pairs(scheduler, scheduler.cycle_length)
        assert first_cycle == second_cycle

    def test_shuffle_once_changes_order_not_contents(self):
        plain = RoundRobinScheduler(4)
        shuffled = RoundRobinScheduler(4, seed=11, shuffle_once=True)
        plain_pairs = collect_pairs(plain, plain.cycle_length)
        shuffled_pairs = collect_pairs(shuffled, shuffled.cycle_length)
        assert sorted(plain_pairs) == sorted(shuffled_pairs)
        assert plain_pairs != shuffled_pairs

    def test_reset(self):
        scheduler = RoundRobinScheduler(3)
        first = scheduler.next_pair(0, [None] * 3)
        scheduler.next_pair(1, [None] * 3)
        scheduler.reset()
        assert scheduler.next_pair(0, [None] * 3) == first


class TestRandomPermutation:
    def test_every_round_contains_every_pair_once(self):
        scheduler = RandomPermutationScheduler(4, seed=2)
        for _ in range(3):
            round_pairs = collect_pairs(scheduler, scheduler.round_length)
            assert sorted(round_pairs) == sorted(all_ordered_pairs(4))

    def test_rounds_differ(self):
        scheduler = RandomPermutationScheduler(5, seed=4)
        first = collect_pairs(scheduler, scheduler.round_length)
        second = collect_pairs(scheduler, scheduler.round_length)
        assert first != second

    def test_declared_weakly_fair(self):
        assert RandomPermutationScheduler(3).is_weakly_fair
        assert RoundRobinScheduler(3).is_weakly_fair
        assert UniformRandomScheduler(3).is_weakly_fair


class TestValidation:
    def test_validate_pair_helper(self):
        class _Fixed(Scheduler):
            name = "fixed"

            def next_pair(self, step, states):
                return self._validate_pair((0, 0))

        scheduler = _Fixed(3)
        with pytest.raises(ValueError):
            scheduler.next_pair(0, [None] * 3)
