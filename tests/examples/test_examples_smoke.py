"""Smoke tests: every example script runs end-to-end, in-process.

The examples are documentation that executes; this suite imports each
``examples/*.py`` module, shrinks its module-level population/trial knobs to
tiny values, and calls its ``main()`` — so a refactor that breaks an example
fails the tier-1 suite instead of the first reader who copies it.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"

#: script stem -> module-level constants to shrink before calling main().
EXAMPLES: dict[str, dict[str, object]] = {
    "quickstart": {},
    "sensor_network": {"NUM_SENSORS": 12, "NUM_BUCKETS": 3, "TRIALS": 1},
    "scheduler_adversary": {"NUM_AGENTS": 8},
    "chemical_computation": {"NUM_MOLECULES": 10, "NUM_SPECIES_COLORS": 3},
    "service_demo": {"POPULATIONS": (8, 10), "TRIALS": 1},
    # Already tiny by construction (the exact engine enumerates the whole
    # configuration space); nothing to shrink.
    "exact_analysis": {},
}


def _load_example(stem: str):
    """Import an example script as a throwaway module."""
    path = EXAMPLES_DIR / f"{stem}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{stem}", path)
    module = importlib.util.module_from_spec(spec)
    # Register so dataclasses/pickling inside the example resolve the module.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    except Exception:
        sys.modules.pop(spec.name, None)
        raise
    return module


def test_every_example_is_covered():
    """A new example script must be added to the smoke matrix."""
    on_disk = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)


@pytest.mark.parametrize("stem", sorted(EXAMPLES))
def test_example_runs_in_process(stem, capsys):
    module = _load_example(stem)
    try:
        for name, value in EXAMPLES[stem].items():
            assert hasattr(module, name), f"{stem}.py no longer defines {name}"
            setattr(module, name, value)
        module.main()
    finally:
        sys.modules.pop(module.__name__, None)
    out = capsys.readouterr().out
    assert out.strip(), f"{stem}.main() printed nothing"
