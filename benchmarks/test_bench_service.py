"""Sweep-service benchmark — the warm cache must embarrass the cold path.

The content-addressed store exists so that a sweep is only ever simulated
once: the second submission of an identical :class:`SweepSpec` should be
served entirely from the JSONL shards (a handful of SHA lookups and record
deserializations) instead of re-running thousands of interactions per spec.
The ``--perf`` assertion pins that contract at **≥20×**: a warm run of the
benchmark sweep must be at least twenty times faster than the cold run that
populated the store.

Marker-free smoke tests keep the store path exercised — correct and
importable — in the default suite and in the CI bench-smoke job.
"""

import time

import pytest

from repro.api.executor import SweepRunner
from repro.api.spec import SweepSpec
from repro.service.store import ResultStore

#: Big enough that simulation dominates store overhead by a wide margin.
SWEEP = SweepSpec(
    name="bench-service",
    protocols=("circles", "cancellation-plurality"),
    populations=(64, 128),
    ks=(3,),
    engines=("batch",),
    trials=4,
    seed=97,
    max_steps_quadratic=200,
)


def _timed_run(store: ResultStore) -> tuple[float, int]:
    start = time.perf_counter()
    result = SweepRunner(store=store).run(SWEEP)
    return time.perf_counter() - start, len(result.records)


def test_store_round_trip_smoke(tmp_path):
    """Smoke (default suite): cold populates, warm serves, records agree."""
    tiny = SweepSpec(**{**SWEEP.to_dict(), "populations": (8,), "trials": 1})
    cold = SweepRunner(store=ResultStore(tmp_path)).run(tiny)
    warm_store = ResultStore(tmp_path)
    warm = SweepRunner(store=warm_store).run(tiny)
    assert warm.records == cold.records
    assert warm_store.hits == len(tiny)


@pytest.mark.perf
def test_warm_cache_is_20x_faster_than_cold(tmp_path, record_perf):
    """The issue's acceptance bar: warm ≥20× cold on the benchmark sweep."""
    cold_time, total = _timed_run(ResultStore(tmp_path))

    # A fresh store object over the same directory: every record must come
    # off disk (shard parse + checksum verify), none from simulation.
    warm_store = ResultStore(tmp_path)
    warm_time, warm_total = _timed_run(warm_store)
    assert warm_total == total
    assert warm_store.hits == total

    speedup = cold_time / warm_time
    print(
        f"\ncold sweep: {cold_time:.3f}s, warm sweep: {warm_time:.4f}s "
        f"({total} runs, speedup {speedup:.0f}x)"
    )
    record_perf(
        "service-warm-cache-vs-cold",
        n=max(SWEEP.populations),
        engine="batch",
        seconds=warm_time,
        speedup=speedup,
        baseline_seconds=cold_time,
    )
    assert warm_time * 20 <= cold_time, (
        f"warm cache only {speedup:.1f}x faster than cold "
        f"({warm_time:.3f}s vs {cold_time:.3f}s for {total} runs)"
    )
