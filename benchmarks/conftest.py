"""Benchmark-suite configuration.

Each benchmark wraps one experiment from :mod:`repro.experiments` (the E1–E8
index of DESIGN.md §4) with pytest-benchmark, runs it exactly once
(experiments are seconds-long, deterministic table builders — not
micro-benchmarks) and prints the resulting table so that
``pytest benchmarks/ --benchmark-only -s`` regenerates every row recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture
def run_experiment_once(benchmark):
    """A helper that runs an experiment exactly once under pytest-benchmark.

    Experiments are seconds-long deterministic table builders, so one round is
    the meaningful measurement; the resulting table is printed so the bench
    output contains the same rows EXPERIMENTS.md records.
    """

    def _run(runner, **params):
        result = benchmark.pedantic(lambda: runner(**params), rounds=1, iterations=1)
        print()
        print(result.to_text())
        return result

    return _run
