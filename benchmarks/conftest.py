"""Benchmark-suite configuration.

Each benchmark wraps one experiment from :mod:`repro.experiments` (the E1–E8
index of DESIGN.md §4) with pytest-benchmark, runs it exactly once
(experiments are seconds-long, deterministic table builders — not
micro-benchmarks) and prints the resulting table so that
``pytest benchmarks/ --benchmark-only -s`` regenerates every row recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import platform
import sys
import time
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.utils.perflog import append_perf_entry  # noqa: E402  (needs src on sys.path)

#: Machine-readable perf log, appended to by ``--perf`` runs so the
#: performance trajectory is tracked across PRs.
BENCH_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"


@pytest.fixture
def run_experiment_once(benchmark):
    """A helper that runs an experiment exactly once under pytest-benchmark.

    Experiments are seconds-long deterministic table builders, so one round is
    the meaningful measurement; the resulting table is printed so the bench
    output contains the same rows EXPERIMENTS.md records.
    """

    def _run(runner, **params):
        result = benchmark.pedantic(lambda: runner(**params), rounds=1, iterations=1)
        print()
        print(result.to_text())
        return result

    return _run


@pytest.fixture
def record_perf(request):
    """Append a machine-readable timing entry to ``BENCH_results.json``.

    Only ``--perf`` runs record (the wall-clock comparisons are skipped
    otherwise, so the fixture is effectively perf-gated); each entry carries
    the bench name, the population size, the engine, the measured seconds,
    the speedup over the bench's own baseline and enough provenance (python
    version, timestamp) to chart the perf trajectory across PRs.
    """

    def _record(
        bench: str,
        *,
        n: int,
        engine: str,
        seconds: float,
        speedup: float | None = None,
        baseline_seconds: float | None = None,
    ) -> None:
        if not request.config.getoption("--perf"):
            return
        entry = {
            "bench": bench,
            "n": n,
            "engine": engine,
            "seconds": round(seconds, 4),
            "speedup": None if speedup is None else round(speedup, 2),
            "baseline_seconds": (
                None if baseline_seconds is None else round(baseline_seconds, 4)
            ),
            "python": platform.python_version(),
            "timestamp": int(time.time()),
        }
        # Atomic append (temp-then-rename): an interrupted run must not
        # destroy the accumulated perf history.
        append_perf_entry(BENCH_RESULTS_PATH, entry)

    return _record
