"""Symmetry-quotient benchmark — exact analysis on tied inputs.

The quotient chain (:mod:`repro.exact.quotient`) folds the configuration
space by the input's color-symmetry stabilizer, so on perfectly tied inputs
the fundamental-matrix solve runs on an orbit set up to ``|stabilizer|``
times smaller — and the solve is cubic, so the wall-clock win compounds.
Checks:

* the rational-arithmetic analysis of the tied circles ``k = 3`` input
  (560 configurations, 192 orbits) is at least **4× faster** quotiented
  than unquotiented — in practice ~20×, the solve dominating;
* the golden-suite regeneration (every case in
  :data:`repro.exact.golden.GOLDEN_CASES`, exact rationals) is recorded
  quotiented vs. unquotiented so the perf log tracks the end-to-end cost of
  the default-on quotient across PRs.

Wall-clock assertions carry the ``perf`` marker (opt-in via
``pytest --perf benchmarks/``); marker-free smoke tests keep the quotient
path exercised in the default suite and the CI bench-smoke job.
"""

import time

import pytest

import repro  # noqa: F401  (populates the protocol registry)
from repro.core.circles import CirclesProtocol
from repro.exact import ExactMarkovEngine, QuotientChain
from repro.exact.golden import GOLDEN_CASES, case_criterion
from repro.protocols.registry import get_protocol

#: The tentpole's acceptance input: all three colors tied, cyclic stabilizer
#: of order 3, 560 source configurations folded to 192 orbits.
TIED_K3 = (0, 0, 1, 1, 2, 2)


def _analysis_time(quotient: bool, arithmetic: str = "exact") -> float:
    start = time.perf_counter()
    engine = ExactMarkovEngine.from_colors(
        CirclesProtocol(3), TIED_K3, arithmetic=arithmetic, quotient=quotient
    )
    engine.run(0)
    return time.perf_counter() - start


def test_quotient_chain_smoke():
    """Smoke (default suite): the quotient path builds and folds orbits."""
    chain = QuotientChain.from_colors(CirclesProtocol(3), TIED_K3)
    assert chain.is_quotiented
    assert chain.stabilizer_order == 3
    assert chain.num_configurations == 192
    assert chain.num_source_configurations == 560


def test_quotiented_engine_smoke():
    """Smoke (default suite): default-on quotient reports source semantics."""
    engine = ExactMarkovEngine.from_colors(CirclesProtocol(2), (0, 0, 1, 1))
    engine.run(0)
    result = engine.distribution_result
    assert result.num_orbits is not None
    assert result.num_configurations > result.num_orbits


@pytest.mark.perf
def test_quotient_speeds_up_the_tied_rational_analysis(record_perf):
    """≥4× on the tied circles k=3 rational solve (cubic in the orbit count)."""
    quotient_time = _analysis_time(quotient=True)
    plain_time = _analysis_time(quotient=False)
    print(
        f"\ntied circles k=3 exact analysis: quotient {quotient_time:.2f}s, "
        f"unquotiented {plain_time:.2f}s, speedup {plain_time / quotient_time:.1f}x"
    )
    record_perf(
        "exact-quotient-tied-k3",
        n=len(TIED_K3),
        engine="exact",
        seconds=quotient_time,
        speedup=plain_time / quotient_time,
        baseline_seconds=plain_time,
    )
    assert quotient_time * 4 <= plain_time, (
        f"quotient only {plain_time / quotient_time:.1f}x faster "
        f"({quotient_time:.2f}s vs {plain_time:.2f}s)"
    )


@pytest.mark.perf
def test_golden_suite_cost_is_recorded(record_perf):
    """The golden-suite regeneration cost, quotiented vs. not, goes to the log.

    The suite mixes tied cases (which fold) with untied ones (bit-identical
    passthrough), so this tracks the *end-to-end* cost of leaving the
    quotient on by default — the number that must not regress.
    """

    def suite_time(quotient: bool) -> float:
        start = time.perf_counter()
        for protocol_name, k, colors in GOLDEN_CASES:
            engine = ExactMarkovEngine.from_colors(
                get_protocol(protocol_name, k),
                colors,
                arithmetic="exact",
                quotient=quotient,
            )
            engine.run(0, criterion=case_criterion(protocol_name))
        return time.perf_counter() - start

    quotient_time = suite_time(True)
    plain_time = suite_time(False)
    print(
        f"\ngolden suite (exact rationals): quotient {quotient_time:.2f}s, "
        f"unquotiented {plain_time:.2f}s"
    )
    record_perf(
        "exact-quotient-golden-suite",
        n=max(len(colors) for _, _, colors in GOLDEN_CASES),
        engine="exact",
        seconds=quotient_time,
        speedup=plain_time / quotient_time,
        baseline_seconds=plain_time,
    )
    # No hard ratio: most golden cases are untied by design.  The guard is
    # only that the default-on quotient does not slow the suite down.
    assert quotient_time <= plain_time * 1.25
