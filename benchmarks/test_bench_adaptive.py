"""Adaptive-sampling benchmark — ``trials="auto"`` versus a fixed budget.

The sequential-sampling layer exists for exactly one reason: on an easy grid
cell the statistic settles long before a worst-case fixed budget is spent.
The perf test pins that claim at matched precision: an all-correct Circles
cell (batch engine, planted majority — the easy-cell regime of the E3/E6
grids) tracked to a Wilson half-width of 0.15 stops after 12 trials, while a
fixed sweep sized for the same half-width *without* knowing p̂ in advance
must budget for the worst case (p̂ = ½), i.e. ``⌈(z / 2·0.15)²⌉ = 43``
trials.  The adaptive sweep must finish at least **2× faster** in wall
clock — the trial-count ratio is ≈3.6×, so the bound has slack — while its
records stay a bit-identical prefix of the fixed sweep's.

Both sides run with ``vectorize=False`` so the measurement isolates the
sampling policy from replicate-group amortization (which would otherwise
help whichever side batches more trials per round).

Wall-clock assertions are opt-in via ``pytest --perf benchmarks/``; timings
land in ``BENCH_results.json`` through the atomic ``record_perf`` fixture.
The smoke test keeps the early-stop + prefix-identity contract exercised in
the default suite.
"""

import dataclasses
import math
import time

import pytest

from repro.api.executor import run_sweep
from repro.api.spec import SweepSpec
from repro.api.stopping import StoppingRule

TARGET_HALF_WIDTH = 0.15
Z_95 = 1.959964
#: Fixed trials guaranteeing a normal-approximation half-width of at most
#: ``TARGET_HALF_WIDTH`` at the worst-case proportion p̂ = ½.
MATCHED_FIXED_TRIALS = math.ceil((Z_95 / (2 * TARGET_HALF_WIDTH)) ** 2)


def adaptive_sweep(n: int, max_trials: int = 64) -> SweepSpec:
    return SweepSpec(
        name="bench-adaptive",
        protocols=("circles",),
        populations=(n,),
        ks=(3,),
        workloads=("planted-majority",),
        engines=("batch",),
        trials="auto",
        stopping=StoppingRule(
            metric="correct",
            proportion=True,
            target_half_width=TARGET_HALF_WIDTH,
            min_trials=4,
            batch_size=4,
            max_trials=max_trials,
        ),
        seed=67,
        max_steps_quadratic=200,
    )


def test_adaptive_stops_early_and_prefixes_fixed():
    """Smoke (default suite): the easy cell stops at 12 trials and its
    records are the exact prefix of the matched fixed sweep."""
    sweep = adaptive_sweep(32)
    auto = run_sweep(sweep)
    (entry,) = auto.extras["stopping"]
    assert entry["reason"] == "half-width"
    assert entry["trials"] == 12  # Wilson hw at p̂=1: 0.162 @ 8, 0.121 @ 12
    fixed = run_sweep(dataclasses.replace(sweep, trials=12, stopping=None))
    assert auto.records == fixed.records


@pytest.mark.perf
def test_adaptive_is_2x_faster_than_matched_fixed_budget(record_perf):
    n = 256
    sweep = adaptive_sweep(n)
    fixed = dataclasses.replace(sweep, trials=MATCHED_FIXED_TRIALS, stopping=None)

    start = time.perf_counter()
    fixed_result = run_sweep(fixed, vectorize=False)
    fixed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    auto_result = run_sweep(sweep, vectorize=False)
    auto_seconds = time.perf_counter() - start

    # Matched precision, identical prefix: the speedup is pure trial savings.
    spent = len(auto_result.records)
    assert auto_result.records == fixed_result.records[:spent]
    assert all(record.correct for record in fixed_result.records)
    (entry,) = auto_result.extras["stopping"]
    assert entry["half_width"] <= TARGET_HALF_WIDTH

    speedup = fixed_seconds / auto_seconds
    print(
        f"\nadaptive: {spent} trials in {auto_seconds:.2f}s vs fixed "
        f"{MATCHED_FIXED_TRIALS} trials in {fixed_seconds:.2f}s at half-width "
        f"<= {TARGET_HALF_WIDTH} (speedup {speedup:.1f}x)"
    )
    record_perf(
        "adaptive-vs-fixed",
        n=n,
        engine="batch",
        seconds=auto_seconds,
        speedup=speedup,
        baseline_seconds=fixed_seconds,
    )
    assert auto_seconds * 2 <= fixed_seconds, (
        f"adaptive sweep only {speedup:.1f}x faster than the matched fixed "
        f"budget ({auto_seconds:.2f}s vs {fixed_seconds:.2f}s for "
        f"{spent} vs {MATCHED_FIXED_TRIALS} trials)"
    )
