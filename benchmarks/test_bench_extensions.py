"""E7 benchmark — the §4 extensions: tie report, color ordering, unordered Circles.

Regenerates the extensions table: announced state bounds (O(k^3)/O(k^2)/O(k^4))
and the empirical behaviour of the sketch-level implementations.
"""

from repro.experiments.e7_extensions import run as run_e7


def test_bench_e7_extensions(run_experiment_once):
    result = run_experiment_once(run_e7, ks=(3, 4), num_agents=20, trials=4, seed=83)
    ks = result.column("k")
    assert result.column("tie-report states (2k^3)") == [2 * k**3 for k in ks]
    assert result.column("ordering states (2k^2)") == [2 * k**2 for k in ks]
    assert result.column("unordered states (2k^4)") == [2 * k**4 for k in ks]
    # On unique-majority inputs the tie layer must be exactly as correct as Circles.
    assert all(rate == 1.0 for rate in result.column("tie-report correct (unique majority)"))
