"""E8 benchmark — scheduler sensitivity: weakly fair vs. unfair schedules.

Regenerates the negative-control table showing that Circles is correct under
every weakly fair scheduler and (necessarily) incorrect under an isolating,
unfair scheduler — demonstrating the role of Definition 1.2.
"""

from repro.experiments.e8_scheduler_sensitivity import run as run_e8


def test_bench_e8_scheduler_sensitivity(run_experiment_once):
    result = run_experiment_once(run_e8, num_agents=15, trials=4, seed=97)
    rows = {row[0]: row for row in result.rows}
    for fair in ("uniform-random", "round-robin", "greedy-stall"):
        assert rows[fair][-1] == "4/4"
        assert rows[fair][1] is True
    assert rows["isolation"][-1] == "0/4"
    assert rows["isolation"][1] is False
