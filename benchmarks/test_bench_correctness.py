"""E3 benchmark — always-correctness under weakly fair schedulers (Theorem 3.7).

Regenerates the correctness table: exhaustive model checking on small inputs
plus empirical sweeps under four weakly fair schedulers, including the
adaptive greedy-stall adversary.
"""

from repro.experiments.e3_correctness import run as run_e3


def test_bench_e3_correctness(run_experiment_once):
    result = run_experiment_once(run_e3, num_agents=18, num_colors=4, trials=6, seed=11)
    assert all(result.column("correct"))
