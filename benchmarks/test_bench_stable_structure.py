"""E4 benchmark — stable configurations match the greedy-set prediction.

Regenerates the Lemma 3.3 / Lemma 3.6 table: the bra/ket conservation law and
the equality between the simulated stable multiset and ``∪_p f(G_p)``.
"""

from repro.experiments.e4_stable_structure import run as run_e4


def test_bench_e4_stable_structure(run_experiment_once):
    result = run_experiment_once(run_e4, populations=(8, 16, 32), ks=(3, 5, 7), trials=5, seed=23)
    trials = 5
    assert all(value == f"{trials}/{trials}" for value in result.column("bra/ket invariant held"))
    assert all(
        value == f"{trials}/{trials}"
        for value in result.column("stable multiset = union of f(G_p)")
    )
