"""Batched-engine benchmark — the fast path behind the E6 convergence sweeps.

Two checks on an E6-style Circles workload (planted majority, uniform random
scheduler) at ``n = 10^5``:

* the batched engine simulates a fixed interaction budget at least 5× faster
  (wall-clock) than the exact sequential :class:`ConfigurationSimulation`
  (the engines sample the *same* Markov chain, so equal budgets are equal
  work);
* the batched engine actually reaches a stable output consensus at that scale
  within a few seconds — a regime where the sequential engines need minutes.

Both tests carry the ``perf`` marker: wall-clock assertions only mean
something on an otherwise idle machine, so they are opt-in via
``pytest --perf benchmarks/``.  A marker-free smoke test keeps the large-``n``
path exercised in the default suite.
"""

import time

import pytest

from repro.core.circles import CirclesProtocol
from repro.simulation import (
    BatchConfigurationSimulation,
    ConfigurationSimulation,
    OutputConsensus,
)
from repro.workloads.distributions import planted_majority

N = 100_000
K = 4


def _elapsed(engine, budget: int) -> float:
    start = time.perf_counter()
    engine.run(budget)
    return time.perf_counter() - start


def test_batch_engine_simulates_large_populations():
    """Smoke (default suite): 100k interactions at n = 10^5 stay exact and fast."""
    colors = planted_majority(N, K, seed=5)
    simulation = BatchConfigurationSimulation.from_colors(CirclesProtocol(K), colors, seed=6)
    simulation.run(100_000)
    assert simulation.steps_taken == 100_000
    assert simulation.num_agents == N
    assert len(simulation.configuration()) == N
    assert sum(simulation.output_counts().values()) == N


@pytest.mark.perf
def test_batch_engine_is_5x_faster_than_configuration_engine(record_perf):
    protocol = CirclesProtocol(K)
    colors = planted_majority(N, K, seed=5)
    budget = 200_000

    batch = BatchConfigurationSimulation.from_colors(protocol, colors, seed=6)
    sequential = ConfigurationSimulation.from_colors(protocol, colors, seed=6)
    # Warm both engines (first burst builds the survival table / touches the
    # multiset) so the timed region is steady-state.
    batch.run(5_000)
    sequential.run(5_000)

    batch_time = _elapsed(batch, budget)
    sequential_time = _elapsed(sequential, budget)
    rate_batch = budget / batch_time
    rate_sequential = budget / sequential_time
    print(
        f"\nbatch: {rate_batch:,.0f} interactions/s, "
        f"sequential: {rate_sequential:,.0f} interactions/s, "
        f"speedup {rate_batch / rate_sequential:.1f}x"
    )
    record_perf(
        "batch-vs-configuration",
        n=N,
        engine="batch",
        seconds=batch_time,
        speedup=sequential_time / batch_time,
        baseline_seconds=sequential_time,
    )
    assert batch_time * 5 <= sequential_time, (
        f"batched engine only {rate_batch / rate_sequential:.1f}x faster "
        f"({batch_time:.2f}s vs {sequential_time:.2f}s for {budget} interactions)"
    )


@pytest.mark.perf
def test_batch_engine_reaches_stable_output_at_1e5():
    # A skewed E6-style input: the majority color dominates, so the output
    # consensus is reachable within a small multiple of n·log n interactions —
    # a regime the batched engine clears in seconds at n = 10^5.
    colors = [0] * (N - 60) + [1] * 40 + [2] * 20
    simulation = BatchConfigurationSimulation.from_colors(CirclesProtocol(3), colors, seed=9)
    converged = simulation.run(40 * N, criterion=OutputConsensus(target=0))
    assert converged, "batched engine did not reach output consensus at n=10^5"
    assert simulation.output_counts() == {0: N}
