"""Observer-pipeline benchmark — streaming metrics and incremental quiescence.

Two claims at ``n = 10^5``:

* attaching count-level observers (energy + ket exchanges) to the batched
  engine keeps large runs exact: the incrementally maintained energy equals
  a from-scratch recomputation after millions of interactions;
* incremental convergence detection (the
  :class:`~repro.simulation.convergence.ActivePairTracker` behind
  ``SilentConfiguration``) answers each quiescence check in ``O(1)`` — at
  least **3× faster** (measured: orders of magnitude) than the periodic
  ``O(d²)`` from-scratch rescan it replaces, on a near-quiescent long run.

The perf test times *detection only*: the same engine advances through a
near-quiescent run (a stable-structure configuration where a few thousand
agents still report stale outputs, so almost every interaction is a no-op),
and at each boundary both detection strategies are timed on the identical
live configuration and must return the identical verdict.  Wall-clock
assertions carry the ``perf`` marker (opt-in via ``pytest --perf``); the
marker-free smoke tests keep the pipeline exercised in the default suite.
"""

import time

import pytest

from repro.core.circles import CirclesProtocol
from repro.core.greedy_sets import predicted_majority, predicted_stable_brakets
from repro.core.potential import configuration_energy
from repro.core.state import CirclesState
from repro.simulation import (
    BatchConfigurationSimulation,
    EnergyObserver,
    KetExchangeObserver,
    SilentConfiguration,
)
from repro.workloads.distributions import planted_majority

N = 100_000
K = 6

#: A skewed plural distribution over K colors with a unique majority (color 0),
#: in fractions of the population size.
SHARES = (0.40, 0.25, 0.15, 0.10, 0.06, 0.04)


def _skewed_colors(num_agents: int) -> list[int]:
    colors: list[int] = []
    for color, share in enumerate(SHARES[:-1]):
        colors += [color] * int(share * num_agents)
    colors += [K - 1] * (num_agents - len(colors))
    return colors


def _near_quiescent_states(num_agents: int, stale: int) -> list[CirclesState]:
    """The predicted stable configuration with ``stale`` out-of-date outputs.

    Lemma 3.6 predicts the terminal braket multiset from the input alone;
    giving every agent the majority output makes the configuration *silent*.
    Re-staling a few outputs yields exactly the near-quiescent regime: the
    only remaining activity is output copying, so almost every interaction
    changes nothing while the configuration is not yet silent.
    """
    colors = _skewed_colors(num_agents)
    majority = predicted_majority(colors)
    states: list[CirclesState] = []
    for braket, count in predicted_stable_brakets(colors).items():
        states.extend([CirclesState(braket.bra, braket.ket, majority)] * count)
    for index in range(stale):
        state = states[index]
        states[index] = CirclesState(
            state.bra, state.ket, (state.out + 1 + index % (K - 1)) % K
        )
    return states


def test_observers_stay_exact_on_the_batch_engine_at_1e5():
    """Smoke (default suite): incremental energy == recomputation at n = 10^5."""
    colors = planted_majority(N, 4, seed=5)
    simulation = BatchConfigurationSimulation.from_colors(CirclesProtocol(4), colors, seed=6)
    energy = simulation.add_observer(EnergyObserver(record="check"))
    exchanges = simulation.add_observer(KetExchangeObserver())
    simulation.run(400_000)
    assert energy.energy == configuration_energy(simulation.states(), 4)
    assert exchanges.exchanges <= simulation.interactions_changed
    assert energy.summary()["monotone_nonincreasing"]


def test_incremental_and_rescan_verdicts_agree_along_a_run():
    """Smoke (default suite): both detection strategies always agree."""
    n = 10_000
    simulation = BatchConfigurationSimulation(
        CirclesProtocol(K), _near_quiescent_states(n, stale=200), seed=11
    )
    incremental = SilentConfiguration()
    rescan = SilentConfiguration(incremental=False)
    converged = False
    for _ in range(100):
        converged = simulation.run(n, criterion=incremental, check_interval=n)
        assert simulation.run(0, criterion=rescan) == converged
        if converged:
            break
    assert converged and simulation.run(0, criterion=rescan)  # the run ends silent


@pytest.mark.perf
def test_incremental_detection_is_3x_faster_than_rescan(record_perf):
    """The issue's acceptance bar: ≥3× faster detection on a near-quiescent run."""
    simulation = BatchConfigurationSimulation(
        CirclesProtocol(K), _near_quiescent_states(N, stale=2_000), seed=3
    )
    assert simulation.compiled_protocol is not None
    incremental = SilentConfiguration()
    rescan = SilentConfiguration(incremental=False)

    checks_per_boundary = 5
    incremental_time = 0.0
    rescan_time = 0.0
    boundaries = 0
    converged = False
    while not converged and boundaries < 60:
        # Advance one parallel-time window of the near-quiescent run, then
        # time both detection strategies on the identical live configuration.
        simulation.run(N, criterion=incremental, check_interval=N)
        boundaries += 1
        start = time.perf_counter()
        for _ in range(checks_per_boundary):
            converged = simulation.run(0, criterion=incremental)
        incremental_time += time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(checks_per_boundary):
            rescan_verdict = simulation.run(0, criterion=rescan)
        rescan_time += time.perf_counter() - start
        assert rescan_verdict == converged  # identical verdict on every state

    assert converged, "the near-quiescent run did not reach silence"
    checks = boundaries * checks_per_boundary
    print(
        f"\nincremental: {incremental_time * 1e6 / checks:,.1f}µs/check, "
        f"rescan: {rescan_time * 1e6 / checks:,.1f}µs/check, "
        f"speedup {rescan_time / incremental_time:.0f}x over {checks} checks"
    )
    record_perf(
        "incremental-quiescence-detection",
        n=N,
        engine="batch",
        seconds=incremental_time,
        speedup=rescan_time / incremental_time,
        baseline_seconds=rescan_time,
    )
    assert incremental_time * 3 <= rescan_time, (
        f"incremental detection only {rescan_time / incremental_time:.1f}x faster "
        f"({incremental_time:.4f}s vs {rescan_time:.4f}s for {checks} checks)"
    )
