"""E1 benchmark — state complexity of Circles vs. the paper's reference bounds.

Regenerates the state-complexity table (Circles ``k^3`` vs. the ``Ω(k^2)``
lower bound, the ``O(k^7)`` prior upper bound and this repository's naive
always-correct comparator) for ``k = 2..8``.
"""

from repro.experiments.e1_state_complexity import run as run_e1


def test_bench_e1_state_complexity(run_experiment_once):
    result = run_experiment_once(
        run_e1, ks=(2, 3, 4, 5, 6, 7, 8), reachable_num_agents=24, reachable_steps=4_000
    )
    circles = result.column("circles (declared)")
    lower = result.column("lower bound k^2")
    prior = result.column("prior upper bound k^7")
    # The paper's headline ordering must hold at every k.
    assert all(low <= mid <= high for low, mid, high in zip(lower, circles, prior))
    assert circles == [k**3 for k in (2, 3, 4, 5, 6, 7, 8)]
