"""E5 benchmark — energy relaxation to the predicted minimum.

Regenerates the energy table: initial energy ``n·k``, the predicted minimum
from the greedy-set construction, the final energies of the discrete engine,
the Gillespie SSA and the sum-rule ablation, plus monotonicity of the paper's
rule.
"""

from repro.experiments.e5_energy import run as run_e5


def test_bench_e5_energy(run_experiment_once):
    result = run_experiment_once(run_e5, populations=(10, 20, 40), ks=(4, 6), seed=41)
    assert result.column("final (paper rule)") == result.column("predicted minimum")
    assert result.column("final (Gillespie SSA)") == result.column("predicted minimum")
    assert all(result.column("monotone"))
