"""Vector-engine benchmark — replicate groups versus looped serial runs.

The replicate-group routing exists for exactly one reason: a sweep's
``trials`` axis re-simulates the *same* compiled protocol on the same input
``R`` times, and advancing all ``R`` rows through one shared state matrix
amortizes every per-interaction cost across the group.  The perf test pins
that claim on an E6-scale workload: a 256-replicate Circles group at
``n = 10^5`` must execute at least **10× faster** than the serial
one-spec-at-a-time baseline — while producing byte-identical records (the
smoke test keeps the identity exercised in the default suite).

Wall-clock assertions are opt-in via ``pytest --perf benchmarks/``; timings
land in ``BENCH_results.json`` through the atomic ``record_perf`` fixture.
"""

import time

import pytest

from repro.api.executor import execute_replicate_group, execute_run
from repro.api.spec import SweepSpec

pytest.importorskip("numpy", reason="the lockstep kernel path needs numpy")

N = 100_000
K = 4
REPLICATES = 256
BUDGET = 200_000  # interactions per replicate; far below convergence at n = 10^5


def vector_sweep(n: int, replicates: int, max_steps: int) -> SweepSpec:
    return SweepSpec(
        protocols=("circles",),
        populations=(n,),
        ks=(K,),
        engines=("batch",),
        trials=replicates,
        seed=17,
        max_steps=max_steps,
    )


def test_replicate_group_records_match_serial():
    """Smoke (default suite): a kernel-path group is record-identical to serial."""
    specs = vector_sweep(4096, 3, 20_000).expand()
    grouped = execute_replicate_group(specs)
    assert grouped == [execute_run(spec) for spec in specs]
    assert len({record.seed for record in grouped}) == len(specs)


@pytest.mark.perf
def test_replicate_group_is_10x_faster_than_serial(record_perf):
    specs = vector_sweep(N, REPLICATES, BUDGET).expand()

    # Serial baseline: time a small sample of full single-spec executions and
    # extrapolate — running all 256 serially would take minutes by design.
    sample_indices = (0, REPLICATES // 2, REPLICATES - 1)
    sample_records = {}
    start = time.perf_counter()
    for index in sample_indices:
        sample_records[index] = execute_run(specs[index])
    serial_sample_time = time.perf_counter() - start
    baseline_seconds = serial_sample_time / len(sample_indices) * REPLICATES

    start = time.perf_counter()
    grouped = execute_replicate_group(specs)
    vector_seconds = time.perf_counter() - start

    for index, record in sample_records.items():
        assert grouped[index] == record, f"row {index} diverged from serial execution"

    speedup = baseline_seconds / vector_seconds
    total = REPLICATES * BUDGET
    print(
        f"\nvector: {total / vector_seconds:,.0f} interactions/s over "
        f"{REPLICATES} replicates ({vector_seconds:.2f}s), serial baseline "
        f"{baseline_seconds:.1f}s (extrapolated), speedup {speedup:.1f}x"
    )
    record_perf(
        "vector-replicates-vs-serial",
        n=N,
        engine="vector",
        seconds=vector_seconds,
        speedup=speedup,
        baseline_seconds=baseline_seconds,
    )
    assert vector_seconds * 10 <= baseline_seconds, (
        f"replicate group only {speedup:.1f}x faster than serial "
        f"({vector_seconds:.2f}s vs {baseline_seconds:.1f}s for "
        f"{REPLICATES} x {BUDGET} interactions)"
    )
