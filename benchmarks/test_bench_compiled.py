"""Compiled-engine benchmark — the table-lookup hot path behind every engine.

Checks on an E6-style Circles workload (planted majority, uniform random
scheduler) at ``n = 10^5``:

* the compiled batch engine (integer count vectors + flat transition tables,
  vectorized burst sampling) simulates a fixed interaction budget at least
  **2× faster** than the PR 1 uncompiled batch engine (``compiled=False``:
  hashable-state pool + memoized transition dict).  The engines sample the
  *same* Markov chain, so equal budgets are equal work;
* the compiled sequential configuration engine beats its uncompiled self on
  the same budget (the ``O(d)`` scan stays, the per-step Python dispatch and
  multiset hashing go);
* compilation itself is cheap and cached per ``(protocol, colors)`` pair.

Wall-clock assertions carry the ``perf`` marker (opt-in via
``pytest --perf benchmarks/``); marker-free smoke tests keep the compiled
paths exercised — importable and correct — in the default suite and in the
CI bench-smoke job.
"""

import time

import pytest

from repro.compile import compile_protocol
from repro.core.circles import CirclesProtocol
from repro.simulation import (
    BatchConfigurationSimulation,
    ConfigurationSimulation,
    OutputConsensus,
)
from repro.utils.multiset import Multiset
from repro.workloads.distributions import planted_majority

N = 100_000
K = 4


def _elapsed(engine, budget: int) -> float:
    start = time.perf_counter()
    engine.run(budget)
    return time.perf_counter() - start


def test_compiled_batch_engine_smoke():
    """Smoke (default suite): the compiled path runs exactly and conserves n."""
    colors = planted_majority(N, K, seed=5)
    simulation = BatchConfigurationSimulation.from_colors(CirclesProtocol(K), colors, seed=6)
    assert simulation.compiled_protocol is not None
    simulation.run(100_000)
    assert simulation.steps_taken == 100_000
    assert simulation.num_agents == N
    assert len(simulation.configuration()) == N
    assert sum(simulation.output_counts().values()) == N


def test_compiled_and_uncompiled_run_the_same_chain():
    """Smoke (default suite): both paths expose identical engine semantics."""
    colors = planted_majority(2_000, K, seed=7)
    protocol = CirclesProtocol(K)
    compiled = BatchConfigurationSimulation.from_colors(protocol, colors, seed=8)
    uncompiled = BatchConfigurationSimulation.from_colors(
        protocol, colors, seed=8, compiled=False
    )
    assert compiled.compiled_protocol is not None
    assert uncompiled.compiled_protocol is None
    for simulation in (compiled, uncompiled):
        simulation.run(20_000)
        assert simulation.steps_taken == 20_000
        assert len(simulation.configuration()) == 2_000
        assert Multiset(simulation.states()) == simulation.configuration()


def test_compilation_is_cached_per_protocol_and_colors():
    protocol = CirclesProtocol(K)
    colors = planted_majority(64, K, seed=9)
    start = time.perf_counter()
    first = compile_protocol(protocol, colors)
    compile_time = time.perf_counter() - start
    assert compile_protocol(protocol, colors) is first
    assert compile_time < 5.0  # d² transition evaluations, once


@pytest.mark.perf
def test_compiled_batch_is_2x_faster_than_uncompiled_batch(record_perf):
    """The issue's acceptance bar: ≥2× over the PR 1 batch engine at n=10^5."""
    protocol = CirclesProtocol(K)
    colors = planted_majority(N, K, seed=5)
    budget = 200_000

    compiled = BatchConfigurationSimulation.from_colors(protocol, colors, seed=6)
    uncompiled = BatchConfigurationSimulation.from_colors(
        protocol, colors, seed=6, compiled=False
    )
    assert compiled.compiled_protocol is not None
    assert uncompiled.compiled_protocol is None
    # Warm both engines (first burst builds the survival table / transition
    # caches) so the timed region is steady-state.
    compiled.run(5_000)
    uncompiled.run(5_000)

    compiled_time = _elapsed(compiled, budget)
    uncompiled_time = _elapsed(uncompiled, budget)
    rate_compiled = budget / compiled_time
    rate_uncompiled = budget / uncompiled_time
    print(
        f"\ncompiled batch: {rate_compiled:,.0f} interactions/s, "
        f"uncompiled batch: {rate_uncompiled:,.0f} interactions/s, "
        f"speedup {rate_compiled / rate_uncompiled:.1f}x"
    )
    record_perf(
        "compiled-vs-uncompiled-batch",
        n=N,
        engine="batch",
        seconds=compiled_time,
        speedup=uncompiled_time / compiled_time,
        baseline_seconds=uncompiled_time,
    )
    assert compiled_time * 2 <= uncompiled_time, (
        f"compiled batch engine only {rate_compiled / rate_uncompiled:.1f}x faster "
        f"({compiled_time:.2f}s vs {uncompiled_time:.2f}s for {budget} interactions)"
    )


@pytest.mark.perf
def test_compiled_configuration_engine_beats_uncompiled(record_perf):
    protocol = CirclesProtocol(K)
    colors = planted_majority(N, K, seed=5)
    budget = 50_000

    compiled = ConfigurationSimulation.from_colors(protocol, colors, seed=6)
    uncompiled = ConfigurationSimulation.from_colors(protocol, colors, seed=6, compiled=False)
    compiled.run(2_000)
    uncompiled.run(2_000)

    compiled_time = _elapsed(compiled, budget)
    uncompiled_time = _elapsed(uncompiled, budget)
    print(
        f"\ncompiled configuration: {budget / compiled_time:,.0f} interactions/s, "
        f"uncompiled: {budget / uncompiled_time:,.0f} interactions/s"
    )
    record_perf(
        "compiled-vs-uncompiled-configuration",
        n=N,
        engine="configuration",
        seconds=compiled_time,
        speedup=uncompiled_time / compiled_time,
        baseline_seconds=uncompiled_time,
    )
    assert compiled_time < uncompiled_time


@pytest.mark.perf
def test_compiled_batch_reaches_stable_output_at_1e5():
    # A skewed E6-style input: the majority color dominates, so the output
    # consensus is reachable within a small multiple of n·log n interactions —
    # a regime the compiled batch engine clears in a second at n = 10^5.
    colors = [0] * (N - 60) + [1] * 40 + [2] * 20
    simulation = BatchConfigurationSimulation.from_colors(CirclesProtocol(3), colors, seed=9)
    converged = simulation.run(40 * N, criterion=OutputConsensus(target=0))
    assert converged, "compiled batch engine did not reach output consensus at n=10^5"
    assert simulation.output_counts() == {0: N}
