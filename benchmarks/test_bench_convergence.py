"""E6 benchmark — convergence time and correctness vs. baselines.

Regenerates the comparison table under the uniform random scheduler: Circles,
the cancellation heuristic, the tournament comparator and (for k = 2) the
classical exact/approximate majority protocols, on planted-majority and
adversarial workloads.

Unlike the other benchmarks this one drives the declarative sweep API
directly: it takes E6's :func:`~repro.experiments.e6_convergence.sweep_specs`
grids, executes them with :func:`~repro.api.executor.run_sweep`, and asserts
on the raw :class:`~repro.api.records.RunRecord`s — the same records the
experiment's table renderer aggregates.
"""

from repro.api.executor import run_sweep
from repro.experiments.e6_convergence import run as run_e6, sweep_specs


def test_bench_e6_convergence(run_experiment_once):
    result = run_experiment_once(run_e6, populations=(16, 32, 64), ks=(2, 4), trials=4, seed=59)
    rows = list(result.rows)
    # The always-correct protocols are correct in every configuration of the sweep.
    for protocol in ("circles", "tournament-plurality"):
        protocol_rows = [row for row in rows if row[0] == protocol]
        assert protocol_rows
        assert all(row[-1] == "4/4" for row in protocol_rows)
    # The naive heuristic appears on all workloads (its measured correctness rate — often
    # below 100% on the near-tie and adversarial workloads — is recorded in the table).
    heuristic_rows = [row for row in rows if row[0] == "cancellation-plurality"]
    assert heuristic_rows


def test_bench_e6_sweep_records(benchmark):
    """The same sweep at record level: every always-correct record is correct."""
    specs = sweep_specs(populations=(16, 32), ks=(2, 4), trials=2, seed=59)

    def execute():
        return [run_sweep(spec) for spec in specs]

    results = benchmark.pedantic(execute, rounds=1, iterations=1)
    records = [record for result in results for record in result.records]
    assert len(records) == sum(len(spec.expand()) for spec in specs)
    for record in records:
        if record.protocol_name in ("circles", "tournament-plurality"):
            assert record.converged and record.correct
        assert record.engine == "batch"
        assert record.seed is not None  # every record re-runnable in isolation
