"""E6 benchmark — convergence time and correctness vs. baselines.

Regenerates the comparison table under the uniform random scheduler: Circles,
the cancellation heuristic, the tournament comparator and (for k = 2) the
classical exact/approximate majority protocols, on planted-majority and
adversarial workloads.
"""

from repro.experiments.e6_convergence import run as run_e6


def test_bench_e6_convergence(run_experiment_once):
    result = run_experiment_once(run_e6, populations=(16, 32, 64), ks=(2, 4), trials=4, seed=59)
    rows = list(result.rows)
    # The always-correct protocols are correct in every configuration of the sweep.
    for protocol in ("circles", "tournament-plurality"):
        protocol_rows = [row for row in rows if row[0] == protocol]
        assert protocol_rows
        assert all(row[-1] == "4/4" for row in protocol_rows)
    # The naive heuristic appears on all workloads (its measured correctness rate — often
    # below 100% on the near-tie and adversarial workloads — is recorded in the table).
    heuristic_rows = [row for row in rows if row[0] == "cancellation-plurality"]
    assert heuristic_rows
