"""E2 benchmark — stabilization: finite ket exchanges, strictly decreasing potential.

Regenerates the Theorem 3.4 table over a sweep of population sizes and color
counts under the uniform random scheduler.
"""

from repro.experiments.e2_stabilization import run as run_e2


def test_bench_e2_stabilization(run_experiment_once):
    result = run_experiment_once(run_e2, populations=(10, 20, 40, 80), ks=(3, 5, 8), seed=7)
    assert all(result.column("g(C) strictly decreasing"))
    assert all(steps is not None for steps in result.column("interactions to stability"))
