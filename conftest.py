"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been pip-installed
(useful on offline machines where editable installs are unavailable); an
installed ``repro`` package, if present, still takes precedence only if it is
the same source tree thanks to the editable install pointing here.

Markers
-------

* ``bench`` — automatically applied to everything under ``benchmarks/``
  (the pytest-benchmark experiment regenerations, which dominate the suite's
  runtime).  Skip them for a fast signal with ``pytest -m "not bench"``; run
  only them with ``pytest -m bench benchmarks/``.
* ``perf`` — wall-clock performance comparisons with timing assertions.
  These are skipped unless ``--perf`` is passed, so an otherwise-loaded
  machine cannot flake the default suite: ``pytest --perf benchmarks/``.
"""

import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    parser.addoption(
        "--perf",
        action="store_true",
        default=False,
        help="run wall-clock performance comparison tests (marker: perf)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench: pytest-benchmark experiment regeneration (deselect with -m 'not bench')",
    )
    config.addinivalue_line(
        "markers",
        "perf: wall-clock performance comparison; skipped unless --perf is given",
    )


def pytest_collection_modifyitems(config, items):
    benchmarks_dir = _ROOT / "benchmarks"
    skip_perf = pytest.mark.skip(reason="performance comparison; run with --perf")
    run_perf = config.getoption("--perf")
    for item in items:
        if Path(str(item.fspath)).is_relative_to(benchmarks_dir):
            item.add_marker(pytest.mark.bench)
        if not run_perf and "perf" in item.keywords:
            item.add_marker(skip_perf)
