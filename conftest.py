"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been pip-installed
(useful on offline machines where editable installs are unavailable); an
installed ``repro`` package, if present, still takes precedence only if it is
the same source tree thanks to the editable install pointing here.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
