"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on environments whose setuptools/pip cannot do
PEP 660 editable installs (e.g. offline boxes without the ``wheel`` package),
via the legacy ``--no-use-pep517`` code path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of the Circles population protocol: relative majority "
        "with a cubic number of states (PODC 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
